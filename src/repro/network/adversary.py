"""Byzantine adversary strategies for the synchronous broadcast model.

In the model of Section 2 up to ``f`` nodes are Byzantine: they may send
arbitrary messages and, crucially, *different* messages to different
receivers in the same round.  The adversary implementations here are
omniscient — they see the true states of all correct nodes before choosing
what each faulty node sends to each receiver — which is exactly the power the
model grants (worst-case behaviour subject only to the cardinality bound
``|F| <= f``).

The strategies range from benign (crash/fixed values) to actively adversarial
(per-receiver splits, phase king register skewing, adaptive majority
attacks).  None of them can be *the* worst case in general — Byzantine
worst-case behaviour is algorithm specific — but together they exercise the
failure modes that the paper's construction defends against: inconsistent
leader votes, split majorities and corrupted phase king registers.
"""

from __future__ import annotations

import random
from abc import ABC, abstractmethod
from collections import Counter
from typing import Any, Iterable, Mapping, Sequence

from repro.core.algorithm import State, SynchronousCountingAlgorithm
from repro.core.boosting import BoostedState
from repro.core.errors import SimulationError
from repro.core.phase_king import INFINITY
from repro.semantics import (
    active_strategy_names,
    adversary_semantics,
    strategy_descriptions,
)
from repro.util.rng import ensure_rng

__all__ = [
    "Adversary",
    "NoAdversary",
    "CrashAdversary",
    "FixedStateAdversary",
    "RandomStateAdversary",
    "SplitStateAdversary",
    "MimicAdversary",
    "PhaseKingSkewAdversary",
    "AdaptiveSplitAdversary",
    "STRATEGIES",
    "STRATEGY_DESCRIPTIONS",
    "build_adversary",
    "random_faulty_set",
    "block_concentrated_faults",
    "spread_faults",
]


class Adversary(ABC):
    """Base class for Byzantine adversaries.

    Subclasses control a fixed set of faulty nodes and implement
    :meth:`forge`, which decides the message a faulty ``sender`` delivers to
    ``receiver`` in a given round.  The returned object is passed through the
    algorithm's ``coerce_message`` by the simulator, so adversaries may return
    arbitrary garbage.
    """

    def __init__(self, faulty: Iterable[int]) -> None:
        self._faulty = frozenset(int(node) for node in faulty)

    @property
    def faulty(self) -> frozenset[int]:
        """The set ``F`` of Byzantine node identifiers."""
        return self._faulty

    def validate(self, algorithm: SynchronousCountingAlgorithm) -> None:
        """Check the fault set against the algorithm's node count and resilience."""
        for node in sorted(self._faulty):
            if not 0 <= node < algorithm.n:
                raise SimulationError(
                    f"faulty node {node} is outside the node range [0, {algorithm.n})"
                )
        if len(self._faulty) > algorithm.f:
            raise SimulationError(
                f"adversary controls {len(self._faulty)} nodes but the algorithm only "
                f"tolerates f={algorithm.f}"
            )

    def on_round_start(
        self,
        round_index: int,
        states: Mapping[int, State],
        algorithm: SynchronousCountingAlgorithm,
        rng: random.Random,
    ) -> None:
        """Hook invoked once per round before messages are forged.

        Adaptive adversaries use it to precompute a per-round attack plan.
        """

    @abstractmethod
    def forge(
        self,
        round_index: int,
        sender: int,
        receiver: int,
        states: Mapping[int, State],
        algorithm: SynchronousCountingAlgorithm,
        rng: random.Random,
    ) -> Any:
        """Return the message ``sender`` (faulty) delivers to ``receiver``.

        Parameters
        ----------
        round_index:
            Current round.
        sender:
            The faulty node whose message is being forged.
        receiver:
            The non-faulty node that will receive the message.
        states:
            The true states of all *non-faulty* nodes at the start of the
            round (the adversary is omniscient about correct nodes).
        algorithm:
            The algorithm under attack (gives access to state structure).
        rng:
            Dedicated adversary randomness.
        """

    def describe(self) -> dict[str, Any]:
        """Summary dictionary for experiment records."""
        return {"strategy": type(self).__name__, "faulty": sorted(self._faulty)}


class NoAdversary(Adversary):
    """The fault-free adversary (``F = ∅``)."""

    def __init__(self) -> None:
        super().__init__(faulty=())

    def forge(  # noqa: D102
        self,
        round_index: int,
        sender: int,
        receiver: int,
        states: Mapping[int, State],
        algorithm: SynchronousCountingAlgorithm,
        rng: random.Random,
    ) -> Any:
        raise SimulationError("NoAdversary controls no nodes and never forges messages")


class CrashAdversary(Adversary):
    """Faulty nodes appear stuck: they always broadcast the algorithm's default state."""

    def forge(  # noqa: D102
        self,
        round_index: int,
        sender: int,
        receiver: int,
        states: Mapping[int, State],
        algorithm: SynchronousCountingAlgorithm,
        rng: random.Random,
    ) -> Any:
        return algorithm.default_state()


class FixedStateAdversary(Adversary):
    """Faulty nodes always broadcast one fixed, attacker-chosen state.

    The ``state`` parameter defaults to ``0`` so the strategy is usable from
    parameter-less campaign grids; whatever is passed is piped through the
    algorithm's ``coerce_message`` by the simulator, so arbitrary garbage is
    read as *some* valid state, exactly like any other forgery.
    """

    def __init__(self, faulty: Iterable[int], state: State = 0) -> None:
        super().__init__(faulty)
        self._state = state

    @property
    def state(self) -> State:
        """The fixed (un-coerced) state every faulty node broadcasts."""
        return self._state

    def forge(  # noqa: D102
        self,
        round_index: int,
        sender: int,
        receiver: int,
        states: Mapping[int, State],
        algorithm: SynchronousCountingAlgorithm,
        rng: random.Random,
    ) -> Any:
        return self._state


class RandomStateAdversary(Adversary):
    """Faulty nodes draw a fresh uniformly random state per receiver.

    This is the canonical "arbitrary behaviour" adversary: per-receiver
    inconsistency plus uniformly random content.
    """

    def forge(  # noqa: D102
        self,
        round_index: int,
        sender: int,
        receiver: int,
        states: Mapping[int, State],
        algorithm: SynchronousCountingAlgorithm,
        rng: random.Random,
    ) -> Any:
        return algorithm.random_state(rng)


class SplitStateAdversary(Adversary):
    """Send one state to half of the receivers and a different one to the rest.

    The two states are re-drawn each round; receivers are split by parity of
    their identifier.  This targets majority-style votes by keeping the two
    halves of the network exposed to conflicting evidence.
    """

    def __init__(self, faulty: Iterable[int]) -> None:
        super().__init__(faulty)
        self._round_states: tuple[State, State] | None = None
        self._round_index = -1

    def on_round_start(  # noqa: D102
        self,
        round_index: int,
        states: Mapping[int, State],
        algorithm: SynchronousCountingAlgorithm,
        rng: random.Random,
    ) -> None:
        self._round_states = (algorithm.random_state(rng), algorithm.random_state(rng))
        self._round_index = round_index

    def forge(  # noqa: D102
        self,
        round_index: int,
        sender: int,
        receiver: int,
        states: Mapping[int, State],
        algorithm: SynchronousCountingAlgorithm,
        rng: random.Random,
    ) -> Any:
        if self._round_states is None or round_index != self._round_index:
            self.on_round_start(round_index, states, algorithm, rng)
        assert self._round_states is not None
        return self._round_states[receiver % 2]


class MimicAdversary(Adversary):
    """Echo the state of a rotating correct node (a subtle, plausible-looking attack).

    The faulty node replays a real state of some correct node, choosing a
    different victim per receiver, so its messages always look legitimate yet
    are mutually inconsistent.
    """

    def __init__(self, faulty: Iterable[int]) -> None:
        super().__init__(faulty)
        self._round_index = -1
        self._correct: list[int] = []

    def on_round_start(  # noqa: D102
        self,
        round_index: int,
        states: Mapping[int, State],
        algorithm: SynchronousCountingAlgorithm,
        rng: random.Random,
    ) -> None:
        # forge() is hot — one call per (sender, receiver) pair — so the
        # sorted node list is hoisted here, once per round.  No randomness is
        # drawn: the RNG streams of seeded runs must not shift.
        self._round_index = round_index
        self._correct = sorted(states)

    def forge(  # noqa: D102
        self,
        round_index: int,
        sender: int,
        receiver: int,
        states: Mapping[int, State],
        algorithm: SynchronousCountingAlgorithm,
        rng: random.Random,
    ) -> Any:
        correct = (
            self._correct if round_index == self._round_index else sorted(states)
        )
        if not correct:
            return algorithm.default_state()
        victim = correct[(receiver + round_index) % len(correct)]
        return states[victim]


class PhaseKingSkewAdversary(Adversary):
    """Targeted attack on the boosted counter's phase king registers.

    For :class:`~repro.core.boosting.BoostedState` messages the adversary
    copies a correct node's inner state (so the block counters and leader
    votes look plausible) but reports a skewed output register ``a`` —
    alternating between a shifted value and the reset marker — trying to
    prevent the ``N - F`` and ``F + 1`` thresholds of the phase king from
    being met.  For other state types it falls back to random states.
    """

    def __init__(self, faulty: Iterable[int], offset: int = 1) -> None:
        super().__init__(faulty)
        self._offset = offset
        self._round_index = -1
        self._correct: list[int] = []

    def on_round_start(  # noqa: D102
        self,
        round_index: int,
        states: Mapping[int, State],
        algorithm: SynchronousCountingAlgorithm,
        rng: random.Random,
    ) -> None:
        # Hoists the per-forge sorted(states) scan to once per round; draws
        # no randomness so seeded RNG streams are unchanged.
        self._round_index = round_index
        self._correct = sorted(states)

    def forge(  # noqa: D102
        self,
        round_index: int,
        sender: int,
        receiver: int,
        states: Mapping[int, State],
        algorithm: SynchronousCountingAlgorithm,
        rng: random.Random,
    ) -> Any:
        correct = (
            self._correct if round_index == self._round_index else sorted(states)
        )
        if not correct:
            return algorithm.default_state()
        victim_state = states[correct[receiver % len(correct)]]
        if isinstance(victim_state, BoostedState):
            if receiver % 2 == 0:
                skewed_a = (
                    (victim_state.a + self._offset) % algorithm.c
                    if victim_state.a != INFINITY
                    else 0
                )
            else:
                skewed_a = INFINITY
            return BoostedState(
                inner=victim_state.inner, a=skewed_a, d=rng.randrange(2)
            )
        return algorithm.random_state(rng)


class AdaptiveSplitAdversary(Adversary):
    """Adaptive attack that keeps the correct nodes' outputs split.

    Each round the adversary inspects the outputs of the correct nodes and
    identifies the two largest camps.  Every faulty node then shows each
    receiver evidence for the camp *opposite* to the receiver's own value, so
    that from the receiver's local perspective its camp never reaches a
    strict majority.  Against majority-following algorithms without further
    defences (the naive baseline) this keeps an even split alive forever;
    against the paper's construction the phase king breaks the symmetry and
    the attack eventually fails — the contrast is exercised in the tests and
    ablations.
    """

    def __init__(self, faulty: Iterable[int]) -> None:
        super().__init__(faulty)
        self._camps: tuple[int, int] = (0, 1)
        self._round_index = -1
        self._outputs: dict[int, int] = {}
        self._state_by_output: dict[int, State] = {}

    def on_round_start(  # noqa: D102
        self,
        round_index: int,
        states: Mapping[int, State],
        algorithm: SynchronousCountingAlgorithm,
        rng: random.Random,
    ) -> None:
        # forge() is called once per (sender, receiver) pair, so everything
        # derivable from the round's states is precomputed here: the per-node
        # outputs, the two camps, and — for _state_with_output — the first
        # state exhibiting each output value (first in states iteration
        # order, matching the former per-forge linear scan exactly).  No
        # randomness is drawn, so seeded RNG streams are unchanged.
        self._round_index = round_index
        self._outputs = {
            node: algorithm.output(node, state) for node, state in states.items()
        }
        by_output: dict[int, State] = {}
        for node, state in states.items():
            by_output.setdefault(self._outputs[node], state)
        self._state_by_output = by_output

        counts = Counter(
            self._outputs[node] for node in sorted(self._outputs)
        ).most_common(2)
        if len(counts) >= 2:
            self._camps = (counts[0][0], counts[1][0])
        elif counts:
            value = counts[0][0]
            self._camps = (value, (value + 1) % algorithm.c)
        else:
            self._camps = (0, 1 % algorithm.c)

    def forge(  # noqa: D102
        self,
        round_index: int,
        sender: int,
        receiver: int,
        states: Mapping[int, State],
        algorithm: SynchronousCountingAlgorithm,
        rng: random.Random,
    ) -> Any:
        cached = round_index == self._round_index
        receiver_state = states.get(receiver)
        if receiver_state is None:
            target = self._camps[receiver % 2]
        else:
            receiver_output = (
                self._outputs[receiver]
                if cached and receiver in self._outputs
                else algorithm.output(receiver, receiver_state)
            )
            target = (
                self._camps[1] if receiver_output == self._camps[0] else self._camps[0]
            )
        if cached:
            if target in self._state_by_output:
                return self._state_by_output[target]
            return self._fabricate_state(algorithm, target, rng)
        return self._state_with_output(algorithm, states, target, rng)

    @classmethod
    def _state_with_output(
        cls,
        algorithm: SynchronousCountingAlgorithm,
        states: Mapping[int, State],
        target: int,
        rng: random.Random,
    ) -> State:
        """Find or fabricate a state whose output equals ``target``."""
        for node, state in states.items():
            if algorithm.output(node, state) == target:
                return state
        return cls._fabricate_state(algorithm, target, rng)

    @staticmethod
    def _fabricate_state(
        algorithm: SynchronousCountingAlgorithm, target: int, rng: random.Random
    ) -> State:
        """Fabricate a plausible state whose output equals ``target``."""
        if isinstance(algorithm.default_state(), int):
            return target
        candidate = algorithm.random_state(rng)
        if isinstance(candidate, BoostedState):
            return BoostedState(inner=candidate.inner, a=target % algorithm.c, d=1)
        return candidate


# ---------------------------------------------------------------------- #
# Strategy registry (generated from the semantics catalogue)
# ---------------------------------------------------------------------- #

#: Named adversary strategies, the shared vocabulary of the ablation
#: experiment, the campaign engine and the ``repro.campaigns`` CLI.  Every
#: entry is constructible as ``cls(faulty, **params)``; ``"none"`` ignores the
#: faulty set entirely.  Generated from :mod:`repro.semantics` — the classes
#: live here, but which names exist and what they mean is declared once, in
#: the catalogue.
STRATEGIES: dict[str, type[Adversary]] = {
    name: adversary_semantics(name).scalar_class()
    for name in active_strategy_names()
}

#: One-line descriptions of every strategy name accepted by
#: :func:`build_adversary` (including the fault-free ``"none"``), generated
#: from the semantics catalogue rather than hand-maintained here.
STRATEGY_DESCRIPTIONS: dict[str, str] = strategy_descriptions()


def build_adversary(
    strategy: str, faulty: Iterable[int] = (), **params: Any
) -> Adversary:
    """Construct a registered adversary strategy by name.

    ``"none"`` returns the fault-free :class:`NoAdversary` (and requires the
    faulty set to be empty).  All other names come from :data:`STRATEGIES`
    and require a *non-empty* faulty set — an active strategy with no nodes
    to control would silently behave exactly like ``"none"``, which turns
    campaign grid rows into accidental duplicates.  Parameters outside the
    strategy's declared schema raise :class:`ParameterError` with the schema
    in the message instead of a bare ``TypeError`` from the constructor.
    """
    faulty_set = frozenset(faulty)
    if strategy == "none":
        if faulty_set:
            raise SimulationError(
                f"strategy 'none' cannot control faulty nodes {sorted(faulty_set)}"
            )
        adversary_semantics("none").validate(params)
        return NoAdversary()
    try:
        cls = STRATEGIES[strategy]
    except KeyError:
        known = ", ".join(["none", *sorted(STRATEGIES)])
        raise SimulationError(
            f"unknown adversary strategy '{strategy}'; known strategies: {known}"
        ) from None
    if not faulty_set:
        raise SimulationError(
            f"adversary strategy '{strategy}' requires a non-empty faulty set; "
            "use strategy 'none' for fault-free runs"
        )
    adversary_semantics(strategy).validate(params)
    return cls(faulty, **params)


# ---------------------------------------------------------------------- #
# Fault pattern generators
# ---------------------------------------------------------------------- #


def random_faulty_set(n: int, f: int, rng: random.Random | int | None = None) -> frozenset[int]:
    """Pick ``f`` faulty nodes uniformly at random from ``[n]``."""
    if f < 0 or f > n:
        raise SimulationError(f"cannot pick {f} faulty nodes out of {n}")
    generator = ensure_rng(rng)
    return frozenset(generator.sample(range(n), f))


def block_concentrated_faults(
    block_size: int, blocks: Sequence[int], per_block: int
) -> frozenset[int]:
    """Concentrate ``per_block`` faults in each of the given blocks.

    Used to reproduce the fault pattern drawn in Figure 2, where whole blocks
    are faulty (more than ``f`` of their members misbehave) while others stay
    clean.
    """
    if per_block < 0 or per_block > block_size:
        raise SimulationError(
            f"per_block must be in [0, {block_size}], got {per_block}"
        )
    faulty: set[int] = set()
    for block in blocks:
        start = block * block_size
        faulty.update(range(start, start + per_block))
    return frozenset(faulty)


def spread_faults(n: int, f: int) -> frozenset[int]:
    """Spread ``f`` faults as evenly as possible over the identifier space."""
    if f < 0 or f > n:
        raise SimulationError(f"cannot pick {f} faulty nodes out of {n}")
    if f == 0:
        return frozenset()
    step = n / f
    return frozenset(min(n - 1, int(i * step)) for i in range(f))
