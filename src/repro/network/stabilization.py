"""Empirical stabilisation detection (the ``t``-stabilisation of Section 2).

An execution stabilises in time ``t`` when there is a round ``r0 <= t`` such
that from ``r0`` on all non-faulty nodes output the same value and that value
increases by one modulo ``c`` every round.  For a finite recorded trace we
report the earliest round from which this holds until the end of the trace —
an *empirical* stabilisation time.  A trailing confirmation window (the
``min_tail`` parameter) guards against declaring stabilisation on a short
coincidental suffix.

For small algorithms the exhaustive verifier (:mod:`repro.verification`)
complements this with a proof over *all* executions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.core.errors import SimulationError
from repro.network.trace import ExecutionTrace

__all__ = [
    "StabilizationResult",
    "RecoveryResult",
    "stabilization_round",
    "stabilization_from_values",
    "recovery_round",
    "recovery_from_values",
    "is_counting_suffix",
    "agreement_round",
]


@dataclass(frozen=True)
class StabilizationResult:
    """Outcome of the stabilisation analysis of one trace.

    Attributes
    ----------
    stabilized:
        True when the trace ends in a correct counting suffix of length at
        least ``min_tail``.
    round:
        The earliest round index from which counting is correct until the end
        of the trace (``None`` when the trace never stabilised).
    tail_length:
        Length of the correct suffix.
    total_rounds:
        Total number of recorded rounds.
    """

    stabilized: bool
    round: int | None
    tail_length: int
    total_rounds: int


def is_counting_suffix(values: Sequence[int | None], c: int) -> bool:
    """Check that ``values`` is a run of agreed outputs incrementing mod ``c``.

    ``values`` holds the per-round agreed output (``None`` when nodes
    disagreed); the run is correct when no entry is ``None`` and consecutive
    entries increase by exactly one modulo ``c``.
    """
    if any(value is None for value in values):
        return False
    for previous, current in zip(values, values[1:]):
        if (previous + 1) % c != current:
            return False
    return True


def agreement_round(trace: ExecutionTrace) -> int | None:
    """First round from which all non-faulty outputs agree until the end."""
    agreed = trace.agreed_values()
    last_disagreement = -1
    for index, value in enumerate(agreed):
        if value is None:
            last_disagreement = index
    start = last_disagreement + 1
    return start if start < len(agreed) else None


def stabilization_round(trace: ExecutionTrace, min_tail: int = 2) -> StabilizationResult:
    """Find the earliest round from which the trace counts correctly to the end.

    Parameters
    ----------
    trace:
        A recorded execution.
    min_tail:
        Minimum length of the correct suffix required to declare
        stabilisation.  Two rounds (one increment) is the logical minimum;
        experiments typically use a full counter period or more.
    """
    return stabilization_from_values(trace.agreed_values(), trace.c, min_tail)


def stabilization_from_values(
    values: Sequence[int | None], c: int, min_tail: int = 2
) -> StabilizationResult:
    """The stabilisation analysis on a bare per-round agreed-value sequence.

    ``values[t]`` is the common output of all correct nodes in round ``t``;
    disagreement is encoded as ``None`` (the trace representation) or any
    negative integer (the batch engine's array representation).  This is the
    one implementation behind both the scalar
    (:func:`stabilization_round`) and the vectorised
    (:func:`repro.campaigns.batching.reduce_summary`) reductions.
    """
    if min_tail < 1:
        raise SimulationError(f"min_tail must be at least 1, got {min_tail}")
    total = len(values)
    if total == 0:
        return StabilizationResult(
            stabilized=False, round=None, tail_length=0, total_rounds=0
        )

    # Walk backwards to find the longest correct suffix.
    suffix_start = total
    for index in range(total - 1, -1, -1):
        value = values[index]
        if value is None or value < 0:
            break
        if index + 1 < total and (value + 1) % c != values[index + 1]:
            break
        suffix_start = index
    tail_length = total - suffix_start
    stabilized = tail_length >= min_tail
    return StabilizationResult(
        stabilized=stabilized,
        round=suffix_start if stabilized else None,
        tail_length=tail_length,
        total_rounds=total,
    )


@dataclass(frozen=True)
class RecoveryResult:
    """Re-stabilisation analysis of a trace with injected perturbations.

    Self-stabilisation promises convergence from *any* configuration, so a
    run perturbed mid-flight (fault-schedule churn, late adversaries) must
    re-converge once the perturbation ends.  This result measures how fast,
    counting from the last round in which a perturbation was injected.

    Attributes
    ----------
    recovered:
        True when the trace ends in a correct counting suffix (of length at
        least ``min_tail``) that starts at or after the last perturbation.
    recovery_round:
        Absolute round index from which counting is correct until the end of
        the trace (``None`` when the run never re-stabilised).
    re_stabilization_time:
        ``recovery_round - last_perturbation_round`` — the number of rounds
        convergence took, the headline robustness metric.  ``0`` means the
        very first post-perturbation outputs were already counting.
    last_perturbation_round:
        The round the measurement is anchored to (``None`` when the run was
        never perturbed, in which case the other fields are ``None`` too).
    total_rounds:
        Total number of recorded rounds.
    """

    recovered: bool
    recovery_round: int | None
    re_stabilization_time: int | None
    last_perturbation_round: int | None
    total_rounds: int


def recovery_round(trace: ExecutionTrace, min_tail: int = 2) -> RecoveryResult:
    """Recovery analysis of a trace, anchored to its recorded perturbations.

    Reads ``last_perturbation_round`` from the trace metadata (stamped by the
    engine when a fault schedule injects or recovers nodes); traces without
    one report ``recovered=False`` with every metric ``None``.
    """
    return recovery_from_values(
        trace.agreed_values(),
        trace.c,
        min_tail=min_tail,
        last_perturbation_round=trace.metadata.get("last_perturbation_round"),
    )


def recovery_from_values(
    values: Sequence[int | None],
    c: int,
    min_tail: int = 2,
    last_perturbation_round: int | None = None,
) -> RecoveryResult:
    """The recovery analysis on a bare per-round agreed-value sequence.

    The sequence is sliced from ``last_perturbation_round`` on — the first
    round whose outputs reflect the perturbed configuration — and the
    standard stabilisation analysis runs on the slice, so the usual
    ``min_tail`` confirmation window applies.  A perturbation round outside
    the recorded range (or no perturbation at all) yields a non-recovery
    with ``None`` metrics rather than an error.
    """
    if min_tail < 1:
        raise SimulationError(f"min_tail must be at least 1, got {min_tail}")
    total = len(values)
    if last_perturbation_round is None or last_perturbation_round < 0:
        return RecoveryResult(
            recovered=False,
            recovery_round=None,
            re_stabilization_time=None,
            last_perturbation_round=None,
            total_rounds=total,
        )
    if last_perturbation_round >= total:
        return RecoveryResult(
            recovered=False,
            recovery_round=None,
            re_stabilization_time=None,
            last_perturbation_round=last_perturbation_round,
            total_rounds=total,
        )
    tail = stabilization_from_values(
        values[last_perturbation_round:], c, min_tail=min_tail
    )
    if not tail.stabilized:
        return RecoveryResult(
            recovered=False,
            recovery_round=None,
            re_stabilization_time=None,
            last_perturbation_round=last_perturbation_round,
            total_rounds=total,
        )
    assert tail.round is not None
    recovery = last_perturbation_round + tail.round
    return RecoveryResult(
        recovered=True,
        recovery_round=recovery,
        re_stabilization_time=tail.round,
        last_perturbation_round=last_perturbation_round,
        total_rounds=total,
    )
