"""The synchronous broadcast-model execution engine (Section 2 of the paper).

In every round each correct node receives the vector of states broadcast by
all nodes — with the entries of Byzantine senders replaced, per receiver, by
whatever the adversary forges — and applies the algorithm's transition
function.  The engine records an :class:`~repro.network.trace.ExecutionTrace`
and can stop early once the outputs have been counting correctly for a
configurable confirmation window (useful because worst-case stabilisation
bounds are far larger than typical stabilisation times).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Mapping, Sequence

from repro.core.algorithm import State, SynchronousCountingAlgorithm
from repro.core.errors import SimulationError
from repro.network.adversary import Adversary, NoAdversary
from repro.network.trace import ExecutionTrace, RoundRecord
from repro.util.rng import derive_rng, ensure_rng

__all__ = ["SimulationConfig", "run_simulation", "run_round"]


@dataclass(frozen=True)
class SimulationConfig:
    """Configuration of a broadcast-model simulation.

    Attributes
    ----------
    max_rounds:
        Hard cap on the number of simulated rounds.
    stop_after_agreement:
        If set, stop the simulation once the correct nodes have been counting
        in agreement for this many consecutive rounds (the trace still
        records everything up to that point).  ``None`` disables early
        stopping.
    record_states:
        Whether to store the full per-round states in the trace (memory
        heavy; off by default).
    seed:
        Seed for all randomness used by the run (adversary, random initial
        states).  Runs with equal seeds and deterministic algorithms are
        bit-for-bit reproducible.
    """

    max_rounds: int = 1000
    stop_after_agreement: int | None = None
    record_states: bool = False
    seed: int | None = 0
    metadata: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.max_rounds < 1:
            raise SimulationError(f"max_rounds must be positive, got {self.max_rounds}")
        if self.stop_after_agreement is not None and self.stop_after_agreement < 1:
            raise SimulationError(
                f"stop_after_agreement must be positive, got {self.stop_after_agreement}"
            )


def run_round(
    algorithm: SynchronousCountingAlgorithm,
    states: Mapping[int, State],
    adversary: Adversary,
    round_index: int,
    rng: random.Random,
) -> dict[int, State]:
    """Execute one synchronous round and return the new states of correct nodes.

    ``states`` maps every *correct* node to its current state.  Faulty nodes
    have no tracked state; their messages are produced by the adversary,
    potentially differently for every receiver.
    """
    faulty = adversary.faulty
    adversary.on_round_start(round_index, states, algorithm, rng)
    new_states: dict[int, State] = {}

    # Correct senders broadcast the same state to every receiver, so the
    # shared part of the message vector can be built once per round; only the
    # entries of faulty senders differ per receiver.  Without faults the whole
    # vector is shared — as an immutable tuple, so a transition that mutated
    # its input would fail loudly instead of corrupting sibling receivers —
    # turning the former O(n²) per-round vector construction into O(n).
    base: tuple[State, ...] = tuple(
        None if sender in faulty else states[sender] for sender in range(algorithm.n)
    )

    if not faulty:
        for receiver in states:
            new_states[receiver] = algorithm.transition(receiver, base)
        return new_states

    faulty_senders = sorted(faulty)
    for receiver in states:
        messages = list(base)
        for sender in faulty_senders:
            forged = adversary.forge(
                round_index, sender, receiver, states, algorithm, rng
            )
            messages[sender] = algorithm.coerce_message(forged)
        new_states[receiver] = algorithm.transition(receiver, messages)
    return new_states


def run_simulation(
    algorithm: SynchronousCountingAlgorithm,
    adversary: Adversary | None = None,
    config: SimulationConfig | None = None,
    initial_states: Mapping[int, State] | Sequence[State] | None = None,
) -> ExecutionTrace:
    """Simulate the algorithm under the given adversary from an arbitrary start.

    Parameters
    ----------
    algorithm:
        The synchronous counter to execute.
    adversary:
        Byzantine adversary (defaults to the fault-free :class:`NoAdversary`).
    config:
        Simulation parameters; defaults to :class:`SimulationConfig`'s
        defaults.
    initial_states:
        Either a mapping from correct node ids to initial states, a sequence
        of ``n`` states (faulty entries are ignored), or ``None`` to draw a
        uniformly random initial configuration — self-stabilisation demands
        correctness from *any* starting point, so random starts are the
        default workload.

    Returns
    -------
    ExecutionTrace
        The recorded execution (outputs per round for all correct nodes).
    """
    adversary = adversary or NoAdversary()
    config = config or SimulationConfig()
    adversary.validate(algorithm)

    master_rng = ensure_rng(config.seed)
    init_rng = derive_rng(master_rng, "initial-states")
    adversary_rng = derive_rng(master_rng, "adversary")

    correct_nodes = [i for i in range(algorithm.n) if i not in adversary.faulty]
    states = _resolve_initial_states(algorithm, correct_nodes, initial_states, init_rng)

    trace = ExecutionTrace(
        algorithm_name=algorithm.info.name,
        n=algorithm.n,
        c=algorithm.c,
        faulty=adversary.faulty,
        initial_outputs={
            node: algorithm.output(node, state) for node, state in states.items()
        },
        metadata={
            **dict(config.metadata),
            "adversary": adversary.describe(),
            "seed": config.seed,
            "max_rounds": config.max_rounds,
        },
    )

    agreement_streak = 0
    previous_agreed: int | None = None
    for round_index in range(config.max_rounds):
        states = run_round(algorithm, states, adversary, round_index, adversary_rng)
        outputs = {node: algorithm.output(node, state) for node, state in states.items()}
        record = RoundRecord(
            round_index=round_index,
            outputs=outputs,
            states=dict(states) if config.record_states else None,
        )
        trace.append(record)

        if config.stop_after_agreement is not None:
            agreed = record.agreed_value()
            if agreed is None:
                agreement_streak = 0
            elif previous_agreed is not None and (previous_agreed + 1) % algorithm.c == agreed:
                agreement_streak += 1
            else:
                agreement_streak = 1
            previous_agreed = agreed
            if agreement_streak >= config.stop_after_agreement:
                trace.metadata["stopped_early"] = True
                trace.metadata["agreement_streak"] = agreement_streak
                break

    return trace


def _resolve_initial_states(
    algorithm: SynchronousCountingAlgorithm,
    correct_nodes: Sequence[int],
    initial_states: Mapping[int, State] | Sequence[State] | None,
    rng: random.Random,
) -> dict[int, State]:
    """Normalise the user-provided initial configuration."""
    if initial_states is None:
        return {node: algorithm.random_state(rng) for node in correct_nodes}
    if isinstance(initial_states, Mapping):
        missing = [node for node in correct_nodes if node not in initial_states]
        if missing:
            raise SimulationError(
                f"initial_states mapping is missing correct nodes {missing}"
            )
        resolved = {node: initial_states[node] for node in correct_nodes}
    else:
        sequence = list(initial_states)
        if len(sequence) != algorithm.n:
            raise SimulationError(
                f"initial_states sequence must have length n={algorithm.n}, "
                f"got {len(sequence)}"
            )
        resolved = {node: sequence[node] for node in correct_nodes}
    for node, state in resolved.items():
        if not algorithm.is_valid_state(state):
            raise SimulationError(
                f"initial state for node {node} is not a valid state: {state!r}"
            )
    return resolved
