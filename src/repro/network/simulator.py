"""The synchronous broadcast-model execution engine (Section 2 of the paper).

In every round each correct node receives the vector of states broadcast by
all nodes — with the entries of Byzantine senders replaced, per receiver, by
whatever the adversary forges — and applies the algorithm's transition
function.  The round loop, RNG stream derivation, trace recording and early
stopping live in the shared kernel (:mod:`repro.network.engine`); this module
contributes the broadcast-specific pieces: the per-round message-vector
construction (:func:`run_round`) and the :class:`BroadcastModel` adapter.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Mapping, Sequence

from repro.core.algorithm import State, SynchronousCountingAlgorithm
from repro.core.errors import SimulationError
from repro.network.adversary import Adversary, NoAdversary
from repro.network.engine import (
    AgreementWindow,
    ModelAdapter,
    NotBefore,
    derive_streams,
    run_engine,
)
from repro.network.trace import ExecutionTrace

__all__ = ["SimulationConfig", "BroadcastModel", "run_simulation", "run_round"]


@dataclass(frozen=True)
class SimulationConfig:
    """Configuration of a broadcast-model simulation.

    Attributes
    ----------
    max_rounds:
        Hard cap on the number of simulated rounds.
    stop_after_agreement:
        If set, stop the simulation once the correct nodes have been counting
        in agreement for this many consecutive rounds (the trace still
        records everything up to that point).  ``None`` disables early
        stopping.
    record_states:
        Whether to store the full per-round states in the trace (memory
        heavy; off by default).
    seed:
        Seed for all randomness used by the run (adversary, random initial
        states).  Runs with equal seeds and deterministic algorithms are
        bit-for-bit reproducible.
    metadata:
        Caller-provided entries merged into the trace metadata
        (simulator-owned keys win on collision).
    perturbations:
        Optional :class:`~repro.faults.schedule.Perturbations` — a fault
        schedule and/or message loss/delay knobs.  Inactive perturbations
        (all knobs at their defaults) behave exactly like ``None``.
    """

    max_rounds: int = 1000
    stop_after_agreement: int | None = None
    record_states: bool = False
    seed: int | None = 0
    metadata: dict = field(default_factory=dict)
    perturbations: Any = None

    def __post_init__(self) -> None:
        if self.max_rounds < 1:
            raise SimulationError(f"max_rounds must be positive, got {self.max_rounds}")
        if self.stop_after_agreement is not None and self.stop_after_agreement < 1:
            raise SimulationError(
                f"stop_after_agreement must be positive, got {self.stop_after_agreement}"
            )


def run_round(
    algorithm: SynchronousCountingAlgorithm,
    states: Mapping[int, State],
    adversary: Adversary,
    round_index: int,
    rng: random.Random,
) -> dict[int, State]:
    """Execute one synchronous round and return the new states of correct nodes.

    ``states`` maps every *correct* node to its current state.  Faulty nodes
    have no tracked state; their messages are produced by the adversary,
    potentially differently for every receiver.
    """
    faulty = adversary.faulty
    adversary.on_round_start(round_index, states, algorithm, rng)
    new_states: dict[int, State] = {}

    # Correct senders broadcast the same state to every receiver, so the
    # shared part of the message vector can be built once per round; only the
    # entries of faulty senders differ per receiver.  Without faults the whole
    # vector is shared — as an immutable tuple, so a transition that mutated
    # its input would fail loudly instead of corrupting sibling receivers —
    # turning the former O(n²) per-round vector construction into O(n).
    base: tuple[State, ...] = tuple(
        None if sender in faulty else states[sender] for sender in range(algorithm.n)
    )

    if not faulty:
        for receiver in states:
            new_states[receiver] = algorithm.transition(receiver, base)
        return new_states

    faulty_senders = sorted(faulty)
    # One message buffer is reused across receivers: only the faulty entries
    # differ per receiver and every one of them is overwritten by the forge
    # below before the transition reads the list.  Transitions receive the
    # buffer read-only (they coerce/copy what they keep), so this saves one
    # O(n) list allocation per receiver per round.
    messages = list(base)
    coerce = algorithm.coerce_message
    forge = adversary.forge
    for receiver in states:
        for sender in faulty_senders:
            forged = forge(round_index, sender, receiver, states, algorithm, rng)
            messages[sender] = coerce(forged)
        new_states[receiver] = algorithm.transition(receiver, messages)
    return new_states


class BroadcastModel(ModelAdapter):
    """The Section 2 broadcast model as a kernel adapter.

    Derives two RNG streams from the master seed — ``initial-states`` then
    ``adversary`` — and executes rounds through :func:`run_round`.  With
    active perturbations a third ``"faults"`` stream is derived *after* the
    first two, feeding schedule draws and the loss/delay plane — unperturbed
    runs derive exactly the historical streams, so their fixed-seed traces
    stay bit-identical.
    """

    model = "broadcast"

    def __init__(
        self, algorithm: Any, adversary: Any, perturbations: Any = None
    ) -> None:
        super().__init__(algorithm, adversary)
        self.perturbations = (
            perturbations
            if perturbations is not None and perturbations.active
            else None
        )
        self._runtime = None

    def validate(self) -> None:
        super().validate()
        if self.perturbations is not None:
            self.perturbations.validate(self.algorithm, self.adversary)

    def bind(self, master_rng: random.Random) -> None:
        self._init_rng, self._adversary_rng = derive_streams(
            master_rng, "initial-states", "adversary"
        )
        if self.perturbations is not None:
            from repro.faults.runtime import PerturbationRuntime

            (faults_rng,) = derive_streams(master_rng, "faults")
            self._runtime = PerturbationRuntime(
                self.algorithm, self.adversary, self.perturbations, faults_rng
            )

    @property
    def init_rng(self) -> random.Random:
        return self._init_rng

    def step(
        self, states: Mapping[int, State], round_index: int
    ) -> tuple[dict[int, State], dict[str, Any] | None]:
        if self._runtime is not None:
            return self._runtime.step(states, round_index, self._adversary_rng)
        return (
            run_round(self.algorithm, states, self.adversary, round_index, self._adversary_rng),
            None,
        )

    def trace_metadata(self) -> dict[str, Any]:
        metadata = super().trace_metadata()
        if self.perturbations is not None:
            metadata["perturbations"] = self.perturbations.describe()
        return metadata


def run_simulation(
    algorithm: SynchronousCountingAlgorithm,
    adversary: Adversary | None = None,
    config: SimulationConfig | None = None,
    initial_states: Mapping[int, State] | Sequence[State] | None = None,
    observer: Any = None,
) -> ExecutionTrace:
    """Simulate the algorithm under the given adversary from an arbitrary start.

    Parameters
    ----------
    algorithm:
        The synchronous counter to execute.
    adversary:
        Byzantine adversary (defaults to the fault-free :class:`NoAdversary`).
    config:
        Simulation parameters; defaults to :class:`SimulationConfig`'s
        defaults.
    initial_states:
        Either a mapping from correct node ids to initial states, a sequence
        of ``n`` states (faulty entries are ignored), or ``None`` to draw a
        uniformly random initial configuration — self-stabilisation demands
        correctness from *any* starting point, so random starts are the
        default workload.
    observer:
        Optional :class:`~repro.obs.observer.Observer`, forwarded to the
        engine; observers only read, so the trace is unchanged by one.

    Returns
    -------
    ExecutionTrace
        The recorded execution (outputs per round for all correct nodes).
    """
    adversary = adversary or NoAdversary()
    config = config or SimulationConfig()
    stopping = (
        AgreementWindow(config.stop_after_agreement, algorithm.c)
        if config.stop_after_agreement is not None
        else None
    )
    if stopping is not None and config.perturbations is not None:
        schedule = getattr(config.perturbations, "schedule", None)
        horizon = schedule.last_change_round() if schedule is not None else None
        if horizon is not None:
            # Never let the agreement window end the run while the schedule
            # still has pending windows: the later injections — and the
            # re-stabilisation they force — must execute, and the window's
            # streak must count post-perturbation rounds only.
            stopping = NotBefore(stopping, horizon)
    return run_engine(
        BroadcastModel(algorithm, adversary, config.perturbations),
        max_rounds=config.max_rounds,
        stopping=stopping,
        record_states=config.record_states,
        seed=config.seed,
        metadata=config.metadata,
        initial_states=initial_states,
        observer=observer,
    )
