"""``repro.obs`` — zero-overhead observability for engines and campaigns.

The subsystem has three small parts:

* :mod:`repro.obs.metrics` — counters, gauges and power-of-two histogram
  sketches in a mergeable :class:`~repro.obs.metrics.MetricsRegistry` with
  JSON snapshot export (multiprocessing workers serialise snapshots back to
  the parent; nothing is shared).
* :mod:`repro.obs.events` — typed lifecycle events
  (:class:`~repro.obs.events.CampaignStarted`,
  :class:`~repro.obs.events.RunFinished`,
  :class:`~repro.obs.events.RoundObserved`, …) fanned out to pluggable
  sinks: in-memory ring buffer, newline-JSONL file, rolling stderr
  progress line.
* :mod:`repro.obs.observer` — the :class:`~repro.obs.observer.Observer`
  handle instrumented code accepts, the no-op
  :data:`~repro.obs.observer.NULL_OBSERVER` default, and the process-global
  default-observer hook the CLI flags use.

Guarantees: observers never draw randomness (attaching one cannot change
any result — enforced by the parity-fuzz suite) and the disabled path costs
one ``is not None`` check per instrumentation guard (<2% on the batch hot
path, enforced by ``benchmarks/bench_obs.py``).
"""

from repro.obs.events import (
    BatchGroupScheduled,
    CampaignFinished,
    CampaignStarted,
    Event,
    EventSink,
    FallbackTaken,
    FaultInjected,
    JsonlSink,
    NodeRecovered,
    ProgressSink,
    RingBufferSink,
    RoundObserved,
    RunFinished,
    RunStarted,
    RunsSkippedOnResume,
    event_from_dict,
    read_events,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    global_metrics,
    set_global_metrics,
)
from repro.obs.observer import (
    NULL_OBSERVER,
    NullObserver,
    Observer,
    active,
    default_observer,
    install_default_observer,
    observing,
)

__all__ = [
    # metrics
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "global_metrics",
    "set_global_metrics",
    # events
    "Event",
    "CampaignStarted",
    "RunsSkippedOnResume",
    "RunStarted",
    "RunFinished",
    "BatchGroupScheduled",
    "RoundObserved",
    "FaultInjected",
    "NodeRecovered",
    "FallbackTaken",
    "CampaignFinished",
    "EventSink",
    "RingBufferSink",
    "JsonlSink",
    "ProgressSink",
    "event_from_dict",
    "read_events",
    # observer
    "Observer",
    "NullObserver",
    "NULL_OBSERVER",
    "active",
    "default_observer",
    "install_default_observer",
    "observing",
]
