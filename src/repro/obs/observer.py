"""The observer: the single handle instrumented code talks to.

An :class:`Observer` bundles a set of event sinks, a metrics registry and a
round-sampling stride.  Every instrumentation point in the engines and the
campaign stack takes an ``observer=None`` keyword; the contract that keeps
the hot paths honest is:

* ``None`` and :data:`NULL_OBSERVER` mean *no observation*.  Instrumented
  code normalises its argument once via :func:`active` and then guards every
  measurement with a plain ``if obs is not None`` — so the disabled cost is
  one identity check per guard, which is what the <2% overhead benchmark
  (``benchmarks/bench_obs.py``) measures.
* Observers only *read*.  They never draw from any RNG and never mutate
  simulation state, so attaching one cannot perturb results — the parity
  fuzz harness runs with a recording observer attached to prove it.
* Workers never share an observer across processes.  Parallel executors
  measure locally and merge registry snapshots at join time
  (:meth:`~repro.obs.metrics.MetricsRegistry.merge`).

A process-global *default observer* (:func:`install_default_observer` /
:func:`default_observer`) lets surface layers — the CLI's ``--progress`` /
``--metrics-out`` / ``--events-out`` flags — wire observation underneath
code that never mentions observers, such as the experiment scripts:
:func:`~repro.campaigns.runner.run_campaign` falls back to the default
observer when no explicit one is passed.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Iterator, Sequence

from repro.obs.events import Event, EventSink, RingBufferSink
from repro.obs.metrics import MetricsRegistry, global_metrics

__all__ = [
    "Observer",
    "NullObserver",
    "NULL_OBSERVER",
    "active",
    "default_observer",
    "install_default_observer",
    "observing",
]


class Observer:
    """Fans events out to sinks and owns the metrics registry.

    Parameters
    ----------
    sinks:
        Event sinks to fan out to (may be empty for metrics-only use).
    metrics:
        The registry measurements are recorded into; defaults to the
        process-global registry (:func:`~repro.obs.metrics.global_metrics`).
    round_stride:
        Emit a :class:`~repro.obs.events.RoundObserved` event every this
        many rounds; ``0`` (the default) disables round sampling entirely,
        keeping per-round work out of the engines' inner loops.
    """

    is_null = False

    def __init__(
        self,
        sinks: Sequence[EventSink] = (),
        metrics: MetricsRegistry | None = None,
        round_stride: int = 0,
    ) -> None:
        if round_stride < 0:
            raise ValueError(f"round_stride must be >= 0, got {round_stride}")
        self.sinks = tuple(sinks)
        self.metrics = metrics if metrics is not None else global_metrics()
        self.round_stride = round_stride

    def emit(self, event: Event) -> None:
        """Deliver one event to every sink."""
        for sink in self.sinks:
            sink.emit(event)

    def close(self) -> None:
        """Close every sink (idempotent)."""
        for sink in self.sinks:
            sink.close()

    def __enter__(self) -> "Observer":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    @classmethod
    def recording(
        cls,
        round_stride: int = 1,
        capacity: int = 4096,
        metrics: MetricsRegistry | None = None,
    ) -> "Observer":
        """An observer that records events into an in-memory ring buffer.

        The buffer is exposed as ``observer.buffer``; metrics default to a
        *fresh* registry (not the global one) so recordings are isolated.
        """
        buffer = RingBufferSink(capacity)
        observer = cls(
            sinks=(buffer,),
            metrics=metrics if metrics is not None else MetricsRegistry(),
            round_stride=round_stride,
        )
        observer.buffer = buffer
        return observer


class NullObserver(Observer):
    """The no-op observer: observes nothing, costs (almost) nothing.

    Instrumented code treats it exactly like ``None`` — :func:`active`
    normalises both to ``None`` — so passing it is equivalent to passing no
    observer at all.  It exists so APIs can default to a real object
    (``observer or NULL_OBSERVER``) without growing per-call conditionals.
    """

    is_null = True

    def __init__(self) -> None:
        super().__init__(sinks=(), metrics=MetricsRegistry(), round_stride=0)

    def emit(self, event: Event) -> None:
        pass


#: The shared no-op observer instance.
NULL_OBSERVER = NullObserver()


def active(observer: Observer | None) -> Observer | None:
    """Normalise an observer argument for hot paths.

    Returns ``None`` for ``None`` and for null observers, the observer
    itself otherwise — so instrumented loops pay a single ``is not None``
    check per guard regardless of which disabled form the caller passed.
    """
    if observer is None or observer.is_null:
        return None
    return observer


_default_lock = threading.Lock()
_default_observer: Observer | None = None


def default_observer() -> Observer | None:
    """The process-global default observer, if one is installed."""
    with _default_lock:
        return _default_observer


def install_default_observer(observer: Observer | None) -> Observer | None:
    """Install (or with ``None`` clear) the default observer; returns the previous one."""
    global _default_observer
    with _default_lock:
        previous = _default_observer
        _default_observer = observer
        return previous


@contextmanager
def observing(observer: Observer) -> Iterator[Observer]:
    """Install ``observer`` as the process default for a ``with`` block.

    Restores the previous default and closes the observer's sinks on exit.
    """
    previous = install_default_observer(observer)
    try:
        yield observer
    finally:
        install_default_observer(previous)
        observer.close()
