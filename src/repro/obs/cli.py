"""Observability flags shared by the ``repro`` command-line surfaces.

``repro run``, ``repro campaign run/resume`` and every ``repro experiment``
subcommand take the same four flags (added by
:func:`add_observability_arguments`):

``--progress``
    Rolling stderr progress line with completion rate and ETA.
``--metrics-out PATH``
    Write a JSON metrics snapshot when the command finishes.
``--events-out PATH``
    Stream lifecycle events to a newline-JSONL file as they happen.
``--round-stride N``
    Additionally sample every N-th simulation round as a
    ``round_observed`` event (0 = off; implies per-round work, so it is
    opt-in).

:func:`observation_from_args` turns parsed flags into an installed default
observer for the duration of the command, so the underlying code paths —
including experiment scripts that predate the observability layer — get
wired without passing observers through every call site.
"""

from __future__ import annotations

import argparse
from contextlib import contextmanager
from typing import Iterator

from repro.obs.events import EventSink, JsonlSink, ProgressSink
from repro.obs.metrics import MetricsRegistry
from repro.obs.observer import Observer, observing

__all__ = ["add_observability_arguments", "observation_from_args"]


def add_observability_arguments(parser: argparse.ArgumentParser) -> None:
    """Add the shared ``--progress``/``--metrics-out``/``--events-out``/``--round-stride`` flags."""
    group = parser.add_argument_group("observability")
    group.add_argument(
        "--progress",
        action="store_true",
        help="show a rolling progress line with rate and ETA on stderr",
    )
    group.add_argument(
        "--metrics-out",
        metavar="PATH",
        default=None,
        help="write a JSON metrics snapshot to PATH when the command finishes",
    )
    group.add_argument(
        "--events-out",
        metavar="PATH",
        default=None,
        help="stream lifecycle events to PATH as newline-delimited JSON",
    )
    group.add_argument(
        "--round-stride",
        type=int,
        default=0,
        metavar="N",
        help="sample every N-th simulation round as a round_observed event (0 = off)",
    )


@contextmanager
def observation_from_args(args: argparse.Namespace) -> Iterator[Observer | None]:
    """Build, install and tear down the observer the parsed flags describe.

    Yields ``None`` (and installs nothing) when no observability flag was
    given, so unobserved commands keep their exact pre-existing behaviour.
    On exit the metrics snapshot is written to ``--metrics-out`` (if set)
    and all sinks are closed.
    """
    progress = getattr(args, "progress", False)
    metrics_out = getattr(args, "metrics_out", None)
    events_out = getattr(args, "events_out", None)
    round_stride = getattr(args, "round_stride", 0) or 0
    if not (progress or metrics_out or events_out or round_stride):
        yield None
        return

    sinks: list[EventSink] = []
    if events_out:
        sinks.append(JsonlSink(events_out))
    if progress:
        sinks.append(ProgressSink())
    observer = Observer(
        sinks=sinks, metrics=MetricsRegistry(), round_stride=round_stride
    )
    try:
        with observing(observer):
            yield observer
    finally:
        if metrics_out:
            observer.metrics.write_json(metrics_out)
