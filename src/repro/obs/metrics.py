"""Lightweight process-local metrics: counters, gauges and timing sketches.

The instrumentation layer (:mod:`repro.obs.observer`) records everything it
measures into a :class:`MetricsRegistry` — a flat namespace of named
:class:`Counter`, :class:`Gauge` and :class:`Histogram` instruments.  The
registry is deliberately tiny and dependency-free:

* **Counters** are monotonically increasing integers (runs completed, rounds
  simulated, fallbacks taken).
* **Gauges** record the latest value of a quantity (live trials in a batch,
  trial-rounds per second of the last chunk).
* **Histograms** are *sketches*, not sample lists: each observation lands in
  a power-of-two bucket, so a million-run campaign costs a handful of ints
  per metric while count / sum / min / max stay exact and quantiles are
  bucket-resolution approximations.  That is what makes per-run timing safe
  to leave on for arbitrarily large campaigns.

Registries are **explicitly mergeable** instead of shared: a multiprocessing
worker never touches the parent's registry — it measures locally, the
measurements travel back serialized with the results, and the parent folds
them in via :meth:`MetricsRegistry.merge`.  Snapshots
(:meth:`MetricsRegistry.snapshot`) are plain JSON-serialisable dictionaries,
which is also the on-disk export format of the CLI's ``--metrics-out``.

There is one process-global default registry (:func:`global_metrics`) for
callers that do not want to thread a registry through their stack; every
instrumented API also accepts an explicitly injected registry (via the
observer) so tests and concurrent campaigns can stay isolated.
"""

from __future__ import annotations

import json
import math
import threading
import time
from contextlib import contextmanager
from pathlib import Path
from typing import Any, Iterator, Mapping

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "global_metrics",
    "set_global_metrics",
]

#: Bucket key for non-positive histogram observations (durations and counts
#: are non-negative, but the sketch must not lose pathological inputs).
_ZERO_BUCKET = -(2**31)


def _bucket_of(value: float) -> int:
    """The power-of-two bucket of a value: ``v`` lands in ``[2^(e-1), 2^e)``."""
    if value <= 0:
        return _ZERO_BUCKET
    return math.frexp(value)[1]


class Counter:
    """A monotonically increasing integer metric."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        """Add ``amount`` (default 1) to the counter."""
        self.value += amount


class Gauge:
    """The most recent value of a quantity (``None`` until first set)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value: float | None = None

    def set(self, value: float) -> None:
        """Record the latest value."""
        self.value = value


class Histogram:
    """A power-of-two bucket sketch of a distribution.

    Exact ``count`` / ``sum`` / ``min`` / ``max``; :meth:`quantile` returns
    the upper bound of the bucket where the requested rank falls (a factor-2
    approximation, which is plenty for timing and round-count sketches).
    """

    __slots__ = ("count", "total", "minimum", "maximum", "buckets")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.minimum: float | None = None
        self.maximum: float | None = None
        self.buckets: dict[int, int] = {}

    def observe(self, value: float) -> None:
        """Account one observation."""
        value = float(value)
        self.count += 1
        self.total += value
        if self.minimum is None or value < self.minimum:
            self.minimum = value
        if self.maximum is None or value > self.maximum:
            self.maximum = value
        bucket = _bucket_of(value)
        self.buckets[bucket] = self.buckets.get(bucket, 0) + 1

    @property
    def mean(self) -> float | None:
        """Arithmetic mean of the observations (``None`` when empty)."""
        return self.total / self.count if self.count else None

    def quantile(self, q: float) -> float | None:
        """Approximate ``q``-quantile: the upper bound of the rank's bucket."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if not self.count:
            return None
        rank = q * self.count
        seen = 0
        for bucket in sorted(self.buckets):
            seen += self.buckets[bucket]
            if seen >= rank:
                return 0.0 if bucket == _ZERO_BUCKET else math.ldexp(1.0, bucket)
        return self.maximum

    def snapshot(self) -> dict[str, Any]:
        """JSON-serialisable form (bucket keys become strings)."""
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.minimum,
            "max": self.maximum,
            "buckets": {str(bucket): count for bucket, count in sorted(self.buckets.items())},
        }

    def merge(self, data: Mapping[str, Any]) -> None:
        """Fold another histogram's :meth:`snapshot` into this one."""
        other_count = int(data.get("count", 0))
        if not other_count:
            return
        self.count += other_count
        self.total += float(data.get("sum", 0.0))
        for extreme, pick in (("min", min), ("max", max)):
            value = data.get(extreme)
            if value is None:
                continue
            current = self.minimum if extreme == "min" else self.maximum
            merged = float(value) if current is None else pick(current, float(value))
            if extreme == "min":
                self.minimum = merged
            else:
                self.maximum = merged
        for key, count in dict(data.get("buckets", {})).items():
            bucket = int(key)
            self.buckets[bucket] = self.buckets.get(bucket, 0) + int(count)


class MetricsRegistry:
    """A named collection of counters, gauges and histograms.

    Instruments are created on first use (``registry.counter("x").inc()``)
    and live for the registry's lifetime.  All mutation goes through a lock —
    instrument lookups are the only synchronised operation, so the per-event
    cost stays at one dict access — making the registry safe to share between
    the main thread and sink callbacks.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    # -- instruments ---------------------------------------------------- #

    def counter(self, name: str) -> Counter:
        """Get or create the named counter."""
        with self._lock:
            instrument = self._counters.get(name)
            if instrument is None:
                instrument = self._counters[name] = Counter()
            return instrument

    def gauge(self, name: str) -> Gauge:
        """Get or create the named gauge."""
        with self._lock:
            instrument = self._gauges.get(name)
            if instrument is None:
                instrument = self._gauges[name] = Gauge()
            return instrument

    def histogram(self, name: str) -> Histogram:
        """Get or create the named histogram."""
        with self._lock:
            instrument = self._histograms.get(name)
            if instrument is None:
                instrument = self._histograms[name] = Histogram()
            return instrument

    @contextmanager
    def timer(self, name: str) -> Iterator[None]:
        """Time a ``with`` block into the named histogram (seconds)."""
        started = time.perf_counter()
        try:
            yield
        finally:
            self.histogram(name).observe(time.perf_counter() - started)

    # -- export and aggregation ----------------------------------------- #

    def __len__(self) -> int:
        return len(self._counters) + len(self._gauges) + len(self._histograms)

    def snapshot(self) -> dict[str, Any]:
        """The registry as one JSON-serialisable mapping."""
        with self._lock:
            return {
                "counters": {
                    name: counter.value for name, counter in sorted(self._counters.items())
                },
                "gauges": {
                    name: gauge.value for name, gauge in sorted(self._gauges.items())
                },
                "histograms": {
                    name: histogram.snapshot()
                    for name, histogram in sorted(self._histograms.items())
                },
            }

    def merge(self, other: "MetricsRegistry | Mapping[str, Any]") -> None:
        """Fold another registry (or a :meth:`snapshot`) into this one.

        Counters and histograms add; gauges take the other side's latest
        value (last merge wins) — the semantics a parent process wants when
        it aggregates worker registries at join time.
        """
        data = other.snapshot() if isinstance(other, MetricsRegistry) else other
        for name, value in dict(data.get("counters", {})).items():
            self.counter(name).inc(int(value))
        for name, value in dict(data.get("gauges", {})).items():
            if value is not None:
                self.gauge(name).set(value)
        for name, histogram_data in dict(data.get("histograms", {})).items():
            self.histogram(name).merge(histogram_data)

    @classmethod
    def from_snapshot(cls, data: Mapping[str, Any]) -> "MetricsRegistry":
        """Rebuild a registry from a :meth:`snapshot` mapping."""
        registry = cls()
        registry.merge(data)
        return registry

    def to_json(self) -> str:
        """The snapshot as indented JSON."""
        return json.dumps(self.snapshot(), indent=2, sort_keys=True)

    def write_json(self, path: str | Path) -> None:
        """Write the snapshot to ``path`` (creating parent directories)."""
        target = Path(path)
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(self.to_json() + "\n", encoding="utf-8")


_global_lock = threading.Lock()
_global_registry: MetricsRegistry | None = None


def global_metrics() -> MetricsRegistry:
    """The process-global default registry (created on first use)."""
    global _global_registry
    with _global_lock:
        if _global_registry is None:
            _global_registry = MetricsRegistry()
        return _global_registry


def set_global_metrics(registry: MetricsRegistry | None) -> MetricsRegistry | None:
    """Replace the process-global registry; returns the previous one.

    ``None`` resets to a fresh lazily-created registry.  Tests use this to
    isolate themselves from ambient instrumentation.
    """
    global _global_registry
    with _global_lock:
        previous = _global_registry
        _global_registry = registry
        return previous
