"""Typed lifecycle events and the sinks they fan out to.

Instrumented code emits *events* — small frozen dataclasses describing one
thing that happened (a campaign started, a run finished, a batch group fell
back to the scalar engine, a sampled round was observed) — through an
:class:`~repro.obs.observer.Observer`, which fans each event out to its
*sinks*.  Three sinks ship with the library:

* :class:`RingBufferSink` — the last ``capacity`` events in memory, for
  tests and post-hoc inspection (``Observer.recording()`` builds one).
* :class:`JsonlSink` — newline-delimited JSON on disk (the CLI's
  ``--events-out``); :func:`read_events` reads a file back into typed
  events.
* :class:`ProgressSink` — a rolling single-line stderr progress display
  with completion rate and ETA (the CLI's ``--progress``).

Event dataclasses are deliberately **timestamp-free and pure data**: sinks
that need wall-clock times (JSONL) stamp a ``ts`` field at write time, so
the events themselves stay deterministic — two identical runs produce
identical event sequences, which is what the parity tests assert.
"""

from __future__ import annotations

import json
import sys
import time
from collections import deque
from dataclasses import asdict, dataclass, fields
from pathlib import Path
from typing import Any, ClassVar, Iterable, Mapping, TextIO

__all__ = [
    "Event",
    "CampaignStarted",
    "RunsSkippedOnResume",
    "RunStarted",
    "RunFinished",
    "BatchGroupScheduled",
    "RoundObserved",
    "FaultInjected",
    "NodeRecovered",
    "FallbackTaken",
    "CampaignFinished",
    "EVENT_KINDS",
    "event_from_dict",
    "EventSink",
    "RingBufferSink",
    "JsonlSink",
    "ProgressSink",
    "read_events",
]


@dataclass(frozen=True)
class Event:
    """Base class of all observability events.

    Subclasses set the ClassVar ``kind`` — the stable wire name used by
    :meth:`to_dict` / :func:`event_from_dict` and the ``"event"`` key of
    every JSONL record.
    """

    kind: ClassVar[str] = "event"

    def to_dict(self) -> dict[str, Any]:
        """The event as a JSON-serialisable mapping (``"event"`` names the kind)."""
        return {"event": self.kind, **asdict(self)}


@dataclass(frozen=True)
class CampaignStarted(Event):
    """A campaign is about to execute ``pending`` of its ``total_runs`` runs."""

    kind: ClassVar[str] = "campaign_started"

    name: str
    total_runs: int
    pending: int
    skipped: int


@dataclass(frozen=True)
class RunsSkippedOnResume(Event):
    """``count`` of ``total`` runs were recovered from a store on resume."""

    kind: ClassVar[str] = "runs_skipped_on_resume"

    count: int
    total: int


@dataclass(frozen=True)
class RunStarted(Event):
    """A single run is about to execute."""

    kind: ClassVar[str] = "run_started"

    run_id: str


@dataclass(frozen=True)
class RunFinished(Event):
    """A single run completed (``error`` is set when it failed).

    ``seconds`` is the wall time of the run where the executor measured one
    (scalar paths); batch-executed runs report ``None`` because the group's
    cost is shared and accounted by :class:`BatchGroupScheduled` instead.
    """

    kind: ClassVar[str] = "run_finished"

    run_id: str
    error: str | None = None
    stabilized: bool | None = None
    stabilization_round: int | None = None
    rounds: int | None = None
    seconds: float | None = None


@dataclass(frozen=True)
class BatchGroupScheduled(Event):
    """A group of runs was dispatched to the vectorised batch engine."""

    kind: ClassVar[str] = "batch_group_scheduled"

    label: str
    runs: int
    engine: str
    deterministic: bool


@dataclass(frozen=True)
class RoundObserved(Event):
    """A sampled simulation round (emitted every ``round_stride`` rounds).

    ``source`` is ``"engine"`` (scalar round loop; ``agreed_value`` is the
    common output when all correct nodes agree) or ``"batch"`` (vectorised
    chunk; ``live_trials``/``agreed_trials`` describe the whole chunk).
    """

    kind: ClassVar[str] = "round_observed"

    source: str
    round_index: int
    live_trials: int = 1
    agreed_value: int | None = None
    agreed_trials: int | None = None


@dataclass(frozen=True)
class FaultInjected(Event):
    """A fault schedule turned ``nodes`` Byzantine at the start of a round.

    Emitted by the scalar engine when a :class:`~repro.faults.FaultSchedule`
    window opens; ``strategy`` names the adversary strategy controlling the
    nodes for the window's duration.
    """

    kind: ClassVar[str] = "fault_injected"

    round_index: int
    strategy: str
    nodes: tuple[int, ...]

    def __post_init__(self) -> None:
        # JSONL round-trips deliver lists; normalise so read-back events
        # compare equal to the originals.
        object.__setattr__(self, "nodes", tuple(self.nodes))


@dataclass(frozen=True)
class NodeRecovered(Event):
    """Formerly faulty ``nodes`` rejoined as correct with arbitrary states.

    The rejoin state is drawn uniformly at random — the self-stabilisation
    workload — so the rounds after this event are exactly the re-convergence
    the recovery metrics measure.
    """

    kind: ClassVar[str] = "node_recovered"

    round_index: int
    nodes: tuple[int, ...]

    def __post_init__(self) -> None:
        object.__setattr__(self, "nodes", tuple(self.nodes))


@dataclass(frozen=True)
class FallbackTaken(Event):
    """A batch group fell back to the scalar engine, and why."""

    kind: ClassVar[str] = "fallback_taken"

    label: str
    runs: int
    reason: str


@dataclass(frozen=True)
class CampaignFinished(Event):
    """A campaign finished; mirrors the headline numbers of the report."""

    kind: ClassVar[str] = "campaign_finished"

    name: str
    executed: int
    skipped: int
    failed: int
    elapsed_seconds: float


#: Wire name → event class, for :func:`event_from_dict`.
EVENT_KINDS: dict[str, type[Event]] = {
    cls.kind: cls
    for cls in (
        CampaignStarted,
        RunsSkippedOnResume,
        RunStarted,
        RunFinished,
        BatchGroupScheduled,
        RoundObserved,
        FaultInjected,
        NodeRecovered,
        FallbackTaken,
        CampaignFinished,
    )
}


def event_from_dict(data: Mapping[str, Any]) -> Event:
    """Rebuild a typed event from a :meth:`Event.to_dict` mapping.

    Sink-stamped keys (``ts``) and unknown fields are dropped, so readers
    stay compatible with files written by newer versions that added fields.
    """
    payload = dict(data)
    kind = payload.pop("event", None)
    if kind not in EVENT_KINDS:
        raise ValueError(f"unknown event kind {kind!r}")
    cls = EVENT_KINDS[kind]
    allowed = {f.name for f in fields(cls)}
    return cls(**{key: value for key, value in payload.items() if key in allowed})


# --------------------------------------------------------------------- #
# Sinks
# --------------------------------------------------------------------- #


class EventSink:
    """Receives events from an observer; subclasses override :meth:`emit`."""

    def emit(self, event: Event) -> None:
        """Handle one event."""

    def close(self) -> None:
        """Flush and release resources (idempotent)."""


class RingBufferSink(EventSink):
    """Keeps the most recent ``capacity`` events in memory."""

    def __init__(self, capacity: int = 4096) -> None:
        self.events: deque[Event] = deque(maxlen=capacity)

    def emit(self, event: Event) -> None:
        self.events.append(event)

    def of_kind(self, cls: type[Event]) -> list[Event]:
        """The buffered events of one type, oldest first."""
        return [event for event in self.events if isinstance(event, cls)]


class JsonlSink(EventSink):
    """Appends one JSON object per event to a newline-delimited file.

    Each record is the event's :meth:`~Event.to_dict` plus a ``ts``
    wall-clock stamp added here at write time — keeping the event objects
    themselves deterministic.  Lines are flushed as they are written so a
    crashed campaign still leaves a readable prefix.
    """

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._file: TextIO | None = self.path.open("a", encoding="utf-8")

    def emit(self, event: Event) -> None:
        if self._file is None:
            return
        record = event.to_dict()
        # repro-lint: allow[DET001] -- the sanctioned obs timestamp sink: ts is stamped on the wire record at write time and never read back
        record["ts"] = time.time()
        self._file.write(json.dumps(record, sort_keys=True) + "\n")
        self._file.flush()

    def close(self) -> None:
        if self._file is not None:
            self._file.close()
            self._file = None


def read_events(path: str | Path) -> list[Event]:
    """Read a :class:`JsonlSink` file back into typed events, in order."""
    events: list[Event] = []
    with Path(path).open("r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                events.append(event_from_dict(json.loads(line)))
    return events


class ProgressSink(EventSink):
    """A rolling single-line progress display with rate and ETA.

    Listens to the campaign lifecycle: :class:`CampaignStarted` sets the
    totals (runs recovered from a store count as already done, so resumed
    campaigns do not restart from zero) and every :class:`RunFinished`
    redraws ``done/total`` with the completion rate and the estimated time
    remaining.  Writes ``\\r``-terminated lines to ``stream`` (stderr by
    default) and a final newline on :meth:`close`.
    """

    def __init__(self, stream: TextIO | None = None) -> None:
        self.stream = stream if stream is not None else sys.stderr
        self._total = 0
        self._done = 0
        self._started = time.perf_counter()
        self._baseline = 0
        self._dirty = False

    def emit(self, event: Event) -> None:
        if isinstance(event, CampaignStarted):
            self._total = event.total_runs
            self._done = event.skipped
            self._baseline = event.skipped
            self._started = time.perf_counter()
            self._draw(event.name)
        elif isinstance(event, RunFinished):
            self._done += 1
            self._draw()
        elif isinstance(event, CampaignFinished):
            self._draw(event.name)

    def _draw(self, name: str | None = None) -> None:
        elapsed = max(time.perf_counter() - self._started, 1e-9)
        fresh = self._done - self._baseline
        rate = fresh / elapsed
        remaining = self._total - self._done
        if rate > 0 and remaining > 0:
            eta = f"eta {remaining / rate:.0f}s"
        elif remaining <= 0:
            eta = "done"
        else:
            eta = "eta --"
        prefix = f"{name}: " if name else ""
        line = f"{prefix}{self._done}/{self._total} runs | {rate:.1f}/s | {eta}"
        self.stream.write("\r" + line.ljust(60))
        self.stream.flush()
        self._dirty = True

    def close(self) -> None:
        if self._dirty:
            self.stream.write("\n")
            self.stream.flush()
            self._dirty = False
