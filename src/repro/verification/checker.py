"""Exhaustive model checking of small synchronous counters.

The checker decides, for a fixed algorithm and a fixed set of faulty nodes,
whether **every** execution from **every** initial configuration stabilises
to correct counting, and if so computes the exact worst-case stabilisation
time.  Combined over all faulty sets of size at most ``f`` this certifies
membership in ``A(n, f, c)`` exactly as defined in Section 2.

The computation has two stages:

1. **Good set** — the largest set ``G`` of configurations in which all
   correct nodes agree on the output and from which *every* reachable
   successor stays in ``G`` with the output incremented by one modulo ``c``
   (a greatest fixed point).  Once inside ``G`` the system counts correctly
   forever, whatever the Byzantine nodes do.
2. **Convergence levels** — the least fixed point assigning to each
   configuration ``e`` the worst-case number of rounds
   ``T(e) = 1 + max_{d reachable from e} T(d)`` needed to enter ``G``.  If
   some configuration never receives a level, the adversary can keep the
   system outside ``G`` forever and the algorithm is **not** a synchronous
   counter for this fault pattern.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Sequence

from repro.core.algorithm import SynchronousCountingAlgorithm
from repro.core.errors import VerificationError
from repro.verification.configuration import ConfigurationSpace

__all__ = ["FaultPatternReport", "VerificationReport", "verify_counter"]


@dataclass(frozen=True)
class FaultPatternReport:
    """Verification outcome for one fixed faulty set.

    Attributes
    ----------
    faulty:
        The faulty set analysed.
    stabilizes:
        True when every execution from every configuration reaches the good
        set.
    stabilization_time:
        Exact worst-case number of rounds to reach the good set (``None`` when
        the algorithm does not stabilise).
    good_configurations:
        Size of the good set.
    total_configurations:
        Size of the configuration space.
    counterexample:
        A configuration from which the adversary can avoid the good set
        forever (``None`` when the algorithm stabilises).
    """

    faulty: frozenset[int]
    stabilizes: bool
    stabilization_time: int | None
    good_configurations: int
    total_configurations: int
    counterexample: tuple | None = None


@dataclass(frozen=True)
class VerificationReport:
    """Aggregated verification outcome over all analysed fault patterns."""

    algorithm_name: str
    n: int
    f: int
    c: int
    patterns: tuple[FaultPatternReport, ...]

    @property
    def is_synchronous_counter(self) -> bool:
        """True when the algorithm stabilises under every analysed fault pattern."""
        return all(pattern.stabilizes for pattern in self.patterns)

    @property
    def stabilization_time(self) -> int | None:
        """Worst-case stabilisation time over all fault patterns (``None`` if any fails)."""
        if not self.is_synchronous_counter:
            return None
        return max(pattern.stabilization_time or 0 for pattern in self.patterns)

    def failing_patterns(self) -> list[FaultPatternReport]:
        """The fault patterns under which stabilisation fails."""
        return [pattern for pattern in self.patterns if not pattern.stabilizes]


def _analyse_fault_pattern(
    algorithm: SynchronousCountingAlgorithm,
    faulty: Sequence[int],
    max_configurations: int,
) -> FaultPatternReport:
    space = ConfigurationSpace(
        algorithm, faulty=faulty, max_configurations=max_configurations
    )
    configurations = list(space.configurations())
    index = {configuration: i for i, configuration in enumerate(configurations)}
    total = len(configurations)
    c = algorithm.c

    # Cache per-configuration data: agreed output (or None) and successor sets.
    agreed_output: list[int | None] = []
    successor_sets: list[list[int]] = []
    for configuration in configurations:
        outputs = space.outputs(configuration)
        agreed_output.append(outputs[0] if len(set(outputs)) == 1 else None)
        successors = {index[d] for d in space.successors(configuration)}
        successor_sets.append(sorted(successors))

    # Stage 1: greatest fixed point for the good set.
    good = [agreed_output[i] is not None for i in range(total)]
    changed = True
    while changed:
        changed = False
        for i in range(total):
            if not good[i]:
                continue
            expected = (agreed_output[i] + 1) % c  # type: ignore[operator]
            for j in successor_sets[i]:
                if not good[j] or agreed_output[j] != expected:
                    good[i] = False
                    changed = True
                    break

    good_count = sum(good)
    if good_count == 0:
        worst = None
        counterexample = configurations[0] if configurations else None
        return FaultPatternReport(
            faulty=frozenset(faulty),
            stabilizes=False,
            stabilization_time=None,
            good_configurations=0,
            total_configurations=total,
            counterexample=counterexample,
        )

    # Stage 2: least fixed point for the convergence levels.
    levels: list[int | None] = [0 if good[i] else None for i in range(total)]
    changed = True
    while changed:
        changed = False
        for i in range(total):
            if levels[i] is not None:
                continue
            successor_levels = []
            complete = True
            for j in successor_sets[i]:
                if levels[j] is None:
                    complete = False
                    break
                successor_levels.append(levels[j])
            if complete:
                levels[i] = 1 + max(successor_levels)
                changed = True

    unresolved = [i for i in range(total) if levels[i] is None]
    if unresolved:
        return FaultPatternReport(
            faulty=frozenset(faulty),
            stabilizes=False,
            stabilization_time=None,
            good_configurations=good_count,
            total_configurations=total,
            counterexample=configurations[unresolved[0]],
        )
    worst = max(level for level in levels if level is not None)
    return FaultPatternReport(
        faulty=frozenset(faulty),
        stabilizes=True,
        stabilization_time=worst,
        good_configurations=good_count,
        total_configurations=total,
        counterexample=None,
    )


def verify_counter(
    algorithm: SynchronousCountingAlgorithm,
    max_faults: int | None = None,
    max_configurations: int = 200_000,
    fault_patterns: Sequence[Sequence[int]] | None = None,
) -> VerificationReport:
    """Exhaustively verify that ``algorithm`` is a synchronous counter.

    Parameters
    ----------
    algorithm:
        The algorithm to verify.  Its state space must be enumerable
        (``algorithm.states()``).
    max_faults:
        Verify all faulty sets of size up to this bound (defaults to the
        algorithm's declared resilience ``f``).
    max_configurations:
        Safety cap on the configuration-space size per fault pattern.
    fault_patterns:
        Explicit fault patterns to check instead of enumerating all subsets
        (useful for spot checks on larger instances).

    Returns
    -------
    VerificationReport
        Per-pattern results plus the aggregate verdict and exact worst-case
        stabilisation time.
    """
    limit = algorithm.f if max_faults is None else max_faults
    if limit < 0:
        raise VerificationError(f"max_faults must be non-negative, got {limit}")
    if fault_patterns is None:
        patterns: list[tuple[int, ...]] = []
        for size in range(0, limit + 1):
            if size >= algorithm.n:
                break
            patterns.extend(itertools.combinations(range(algorithm.n), size))
    else:
        patterns = [tuple(pattern) for pattern in fault_patterns]

    reports = [
        _analyse_fault_pattern(algorithm, pattern, max_configurations)
        for pattern in patterns
    ]
    return VerificationReport(
        algorithm_name=algorithm.info.name,
        n=algorithm.n,
        f=limit,
        c=algorithm.c,
        patterns=tuple(reports),
    )
