"""Exhaustive verification and synthesis for small synchronous counters.

The counters of [4, 5] that the paper cites as practical base cases were
found by *computer-aided algorithm design*: enumerate (or SAT-encode) the
space of small algorithms and verify each candidate exhaustively against all
Byzantine behaviours and all initial states.  This package reproduces that
methodology at a scale feasible without external solvers:

* :mod:`repro.verification.configuration` — enumeration of configurations
  (projections ``π_F`` of the global state) and of the reachability relation
  of Section 2.
* :mod:`repro.verification.checker` — a model checker that certifies whether
  an algorithm is a synchronous ``c``-counter of resilience ``f`` and, if so,
  computes its exact worst-case stabilisation time.
* :mod:`repro.verification.synthesis` — a brute-force synthesiser for tiny
  parameter settings, demonstrating the synthesis approach of [4, 5].
"""

from repro.verification.checker import VerificationReport, verify_counter
from repro.verification.configuration import ConfigurationSpace
from repro.verification.synthesis import SynthesisResult, synthesize_symmetric_counter

__all__ = [
    "ConfigurationSpace",
    "VerificationReport",
    "verify_counter",
    "SynthesisResult",
    "synthesize_symmetric_counter",
]
