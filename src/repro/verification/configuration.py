"""Configuration spaces and the reachability relation of Section 2.

For a fixed set ``F`` of faulty nodes, a *configuration* is the projection
``π_F`` of the global state onto the non-faulty nodes.  Configuration ``d``
is reachable from ``e`` when, for every non-faulty node ``i``, there is a
message vector that agrees with ``e`` on the non-faulty coordinates (the
Byzantine coordinates are arbitrary) under which ``i`` moves to ``d_i`` —
i.e. the Byzantine nodes can steer each non-faulty node *independently*
within its per-node possibility set.

:class:`ConfigurationSpace` enumerates configurations and per-node
possibility sets for algorithms with small, enumerable state spaces.  It is
the foundation of the exhaustive checker.
"""

from __future__ import annotations

import itertools
from typing import Iterator, Sequence

from repro.core.algorithm import State, SynchronousCountingAlgorithm
from repro.core.errors import VerificationError

__all__ = ["ConfigurationSpace"]

#: Refuse to enumerate spaces larger than this many configurations.
DEFAULT_MAX_CONFIGURATIONS = 200_000


class ConfigurationSpace:
    """Enumeration of configurations for a fixed faulty set ``F``."""

    def __init__(
        self,
        algorithm: SynchronousCountingAlgorithm,
        faulty: Sequence[int] = (),
        max_configurations: int = DEFAULT_MAX_CONFIGURATIONS,
    ) -> None:
        self._algorithm = algorithm
        self._faulty = frozenset(faulty)
        for node in sorted(self._faulty):
            if not 0 <= node < algorithm.n:
                raise VerificationError(
                    f"faulty node {node} outside [0, {algorithm.n})"
                )
        self._correct = [i for i in range(algorithm.n) if i not in self._faulty]
        if not self._correct:
            raise VerificationError("at least one node must be non-faulty")
        # Check the size from the (cheap) state count before materialising the
        # state space: boosted counters report num_states() in the millions and
        # must be rejected without enumerating anything.
        declared = algorithm.num_states()
        size = declared ** len(self._correct)
        if size > max_configurations:
            raise VerificationError(
                f"configuration space has {size} configurations which exceeds the "
                f"limit of {max_configurations}"
            )
        try:
            self._states = list(algorithm.states())
        except NotImplementedError as error:
            raise VerificationError(
                f"{algorithm.info.name} does not enumerate its state space; "
                "exhaustive verification is only possible for small algorithms"
            ) from error
        self._max_configurations = max_configurations

    # ------------------------------------------------------------------ #
    # Basic accessors
    # ------------------------------------------------------------------ #

    @property
    def algorithm(self) -> SynchronousCountingAlgorithm:
        """The algorithm under verification."""
        return self._algorithm

    @property
    def faulty(self) -> frozenset[int]:
        """The fixed set of Byzantine nodes."""
        return self._faulty

    @property
    def correct_nodes(self) -> list[int]:
        """The non-faulty node identifiers, in increasing order."""
        return list(self._correct)

    @property
    def states(self) -> list[State]:
        """The algorithm's state space ``X`` as a list."""
        return list(self._states)

    def size(self) -> int:
        """Number of configurations ``|X|^{n - |F|}``."""
        return len(self._states) ** len(self._correct)

    # ------------------------------------------------------------------ #
    # Enumeration
    # ------------------------------------------------------------------ #

    def configurations(self) -> Iterator[tuple[State, ...]]:
        """Iterate over all configurations (tuples indexed like ``correct_nodes``)."""
        yield from itertools.product(self._states, repeat=len(self._correct))

    def outputs(self, configuration: tuple[State, ...]) -> list[int]:
        """Outputs of the non-faulty nodes in the given configuration."""
        return [
            self._algorithm.output(node, state)
            for node, state in zip(self._correct, configuration)
        ]

    # ------------------------------------------------------------------ #
    # Reachability
    # ------------------------------------------------------------------ #

    def successor_choices(
        self, configuration: tuple[State, ...]
    ) -> list[tuple[State, ...]]:
        """Per-node possibility sets under the reachability relation.

        ``result[p]`` is the tuple of states that correct node
        ``correct_nodes[p]`` can be steered into by the Byzantine nodes when
        the system is in ``configuration``.
        """
        base = {node: state for node, state in zip(self._correct, configuration)}
        choices: list[tuple[State, ...]] = []
        byzantine = sorted(self._faulty)
        byzantine_combinations = list(itertools.product(self._states, repeat=len(byzantine)))
        for node in self._correct:
            reachable: set[State] = set()
            for combo in byzantine_combinations:
                vector: list[State] = []
                combo_index = 0
                for sender in range(self._algorithm.n):
                    if sender in self._faulty:
                        vector.append(combo[combo_index])
                        combo_index += 1
                    else:
                        vector.append(base[sender])
                reachable.add(self._algorithm.transition(node, vector))
            choices.append(tuple(sorted(reachable, key=repr)))
        return choices

    def successors(self, configuration: tuple[State, ...]) -> Iterator[tuple[State, ...]]:
        """Iterate over all configurations reachable from ``configuration``."""
        choices = self.successor_choices(configuration)
        yield from itertools.product(*choices)
