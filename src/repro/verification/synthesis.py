"""Brute-force synthesis of tiny synchronous counters (the approach of [4, 5]).

The paper notes that for small parameters the counting problem "is amenable
to algorithm synthesis": one can enumerate candidate transition functions and
verify each exhaustively.  The published 1-resilient algorithms were found
with SAT solvers; re-running that search is out of scope here, but the same
methodology is demonstrated at a smaller scale: we synthesise *symmetric*
(anonymous) fault-free counters, where every node applies the same transition
function to the multiset of received states.

Although modest, the synthesiser exercises exactly the pipeline of [4, 5] —
candidate enumeration plus exhaustive verification — and its results are used
by tests and the documentation to show what "computer-designed base counter"
means concretely.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Any, Iterator, Sequence

from repro.core.algorithm import AlgorithmInfo, State, SynchronousCountingAlgorithm
from repro.core.errors import ParameterError, VerificationError
from repro.util.rng import ensure_rng
from repro.verification.checker import verify_counter

__all__ = ["SymmetricTableCounter", "SynthesisResult", "synthesize_symmetric_counter"]


class SymmetricTableCounter(SynchronousCountingAlgorithm):
    """A counter defined by an explicit table over multisets of received states.

    Every node applies the same rule: the new state is looked up from the
    sorted multiset of the ``n`` received states.  The output function is the
    identity (states are counter values in ``[c]``).
    """

    def __init__(
        self,
        n: int,
        c: int,
        table: dict[tuple[int, ...], int],
        f: int = 0,
        name: str = "SymmetricTable",
    ) -> None:
        info = AlgorithmInfo(
            name=f"{name}[n={n}, c={c}]",
            deterministic=True,
            source="synthesised (Section 1 / refs [4, 5] methodology)",
        )
        super().__init__(n=n, f=f, c=c, info=info)
        self._table = dict(table)
        for key, value in self._table.items():
            if len(key) != n:
                raise ParameterError(f"table key {key} does not have length n={n}")
            if not 0 <= value < c:
                raise ParameterError(f"table value {value} outside [0, {c})")

    @property
    def table(self) -> dict[tuple[int, ...], int]:
        """The transition table (sorted received multiset -> new state)."""
        return dict(self._table)

    def num_states(self) -> int:
        return self.c

    def states(self) -> Iterator[int]:
        return iter(range(self.c))

    def default_state(self) -> int:
        return 0

    def random_state(self, rng: Any = None) -> int:
        return ensure_rng(rng).randrange(self.c)

    def is_valid_state(self, state: Any) -> bool:
        return isinstance(state, int) and not isinstance(state, bool) and 0 <= state < self.c

    def coerce_message(self, message: Any) -> int:
        if isinstance(message, bool) or not isinstance(message, int):
            return 0
        return message % self.c

    def transition(self, node: int, messages: Sequence[State]) -> int:
        key = tuple(sorted(self.coerce_message(message) for message in messages))
        try:
            return self._table[key]
        except KeyError:
            raise VerificationError(f"transition table has no entry for multiset {key}")

    def output(self, node: int, state: State) -> int:
        return self.coerce_message(state)


@dataclass(frozen=True)
class SynthesisResult:
    """Outcome of a synthesis run.

    Attributes
    ----------
    algorithm:
        A verified counter, or ``None`` when the search space contains none.
    candidates_checked:
        Number of candidate transition tables examined.
    stabilization_time:
        Exact worst-case stabilisation time of the returned algorithm.
    """

    algorithm: SymmetricTableCounter | None
    candidates_checked: int
    stabilization_time: int | None


def synthesize_symmetric_counter(
    n: int,
    c: int = 2,
    max_candidates: int = 200_000,
) -> SynthesisResult:
    """Search for a fault-free symmetric ``c``-counter on ``n`` nodes.

    Enumerates all transition tables over multisets of received values,
    verifying each with the exhaustive checker, and returns the first verified
    counter with the smallest worst-case stabilisation time among the
    candidates inspected before it (ties broken by enumeration order).

    The search space has ``c^B`` candidates where ``B`` is the number of
    multisets of size ``n`` over ``[c]``; the ``max_candidates`` cap keeps the
    search bounded.
    """
    if n < 1:
        raise ParameterError(f"n must be positive, got {n}")
    if c < 2:
        raise ParameterError(f"c must be at least 2, got {c}")
    multisets = list(itertools.combinations_with_replacement(range(c), n))
    space_size = c ** len(multisets)
    best: SymmetricTableCounter | None = None
    best_time: int | None = None
    checked = 0
    for assignment in itertools.product(range(c), repeat=len(multisets)):
        if checked >= max_candidates:
            break
        checked += 1
        table = dict(zip(multisets, assignment))
        candidate = SymmetricTableCounter(n=n, c=c, table=table, f=0)
        report = verify_counter(candidate, max_faults=0)
        if report.is_synchronous_counter:
            time = report.stabilization_time
            if best_time is None or (time is not None and time < best_time):
                best = candidate
                best_time = time
                if best_time == 0:
                    break
    del space_size
    return SynthesisResult(
        algorithm=best, candidates_checked=checked, stabilization_time=best_time
    )
