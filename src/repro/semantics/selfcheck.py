"""Empirical self-check of the declared component semantics.

The catalogue (:mod:`repro.semantics.catalog`) *declares* facts — parameter
schemas, state spaces, determinism classes — that the engines and the parity
harness then rely on.  :func:`verify` closes the loop by checking every
declaration against the actual implementations:

* every algorithm spec builds with its declared defaults, its declared model
  and state space match the built instance, and unknown parameters are
  rejected;
* every adversary spec resolves to its scalar class, and the scalar
  ``forge`` path's actual RNG consumption (probed against a flat and a
  boosted algorithm) matches ``scalar_deterministic``;
* with NumPy available, every kernel binding resolves, the algorithm
  kernels' ``deterministic`` / ``fields`` match the declared
  ``batch_deterministic`` / ``flat_state``, and the adversary kernels'
  actual NumPy RNG consumption (probed per encoding) matches the declared
  :class:`~repro.semantics.spec.DeterminismClass` exactly — a mis-declared
  determinism class is reported, not silently trusted.

``verify`` returns a list of human-readable problems (empty means the
catalogue is sound); the CI ``semantics-audit`` job and the test suite run
it so a spec edit cannot drift from the implementations.
"""

from __future__ import annotations

from typing import Any, Mapping

from repro.core.errors import ParameterError
from repro.semantics.catalog import (
    ADVERSARY_SEMANTICS,
    ALGORITHM_SEMANTICS,
    FAULT_SCHEDULE_SEMANTICS,
)
from repro.semantics.spec import (
    AdversarySemantics,
    AlgorithmSemantics,
    FaultScheduleSemantics,
)
from repro.util.rng import ensure_rng

__all__ = ["verify"]

#: The probe algorithms: one flat integer state space, one boosted codec.
_FLAT_PROBE = ("naive-majority", {})
_BOOSTED_PROBE = ("corollary1", {})


def _numpy_available() -> bool:
    from importlib.util import find_spec

    return find_spec("numpy") is not None


def _build_probe(
    algorithms: Mapping[str, AlgorithmSemantics], entry: tuple[str, dict[str, Any]]
) -> Any:
    name, params = entry
    return algorithms[name].build(**params)


def _scalar_rng_consumed(
    spec: AdversarySemantics, algorithm: Any
) -> bool:
    """Whether one scalar forge round against ``algorithm`` drew randomness."""
    adversary = spec.scalar_class()(
        (0,), **{p.name: p.default for p in spec.parameters}
    )
    states = {
        node: algorithm.default_state() for node in range(1, algorithm.n)
    }
    rng = ensure_rng(0)
    before = rng.getstate()
    adversary.on_round_start(0, states, algorithm, rng)
    for receiver in states:
        adversary.forge(0, 0, receiver, states, algorithm, rng)
    return rng.getstate() != before


def _batch_rng_consumed(kernel_cls: Any, kernel: Any, params: dict[str, Any]) -> bool:
    """Whether one batch forge round against ``kernel`` drew NumPy randomness."""
    import numpy as np

    adversary_kernel = kernel_cls(kernel, **params)
    n = kernel.algorithm.n
    batch = 2
    states = np.empty((batch, n, kernel.fields), dtype=np.int64)
    states[:, :, :] = kernel.default_fields()
    correct_sorted = np.broadcast_to(
        np.arange(1, n)[None, :], (batch, n - 1)
    ).copy()
    faulty_idx = np.zeros((batch, 1), dtype=np.int64)
    # repro-lint: allow[DET002] -- fixed-seed NumPy probe stream local to the audit; scalar streams have no NumPy-side derivation helper
    rng = np.random.default_rng(1)
    before = repr(rng.bit_generator.state)
    adversary_kernel.begin_round(0, states, correct_sorted, rng)
    adversary_kernel.forge(
        0,
        faulty_idx[:, None, :],
        np.arange(n)[None, :, None],
        states,
        correct_sorted,
        rng,
    )
    return repr(rng.bit_generator.state) != before


def _check_algorithms(
    algorithms: Mapping[str, AlgorithmSemantics], problems: list[str]
) -> None:
    for name, spec in algorithms.items():
        if name != spec.name:
            problems.append(f"algorithm {name!r}: catalogue key != spec name {spec.name!r}")
            continue
        try:
            instance = spec.build(
                **{p.name: p.default for p in spec.parameters}
            )
        except Exception as exc:  # noqa: BLE001 - report, don't crash the audit
            problems.append(
                f"algorithm {name!r}: declared defaults do not build: {exc}"
            )
            continue
        pulling = hasattr(instance, "pull_targets")
        declared_model = spec.model
        if (declared_model == "pulling") != pulling:
            problems.append(
                f"algorithm {name!r}: declared model {declared_model!r} but the "
                f"built instance is {'pulling' if pulling else 'broadcast'}"
            )
        flat = isinstance(instance.default_state(), int)
        if flat != spec.flat_state:
            problems.append(
                f"algorithm {name!r}: declared "
                f"{'flat' if spec.flat_state else 'boosted'} state space but "
                f"default_state() is {type(instance.default_state()).__name__}"
            )
        if not spec.fuzz:
            problems.append(
                f"algorithm {name!r}: no parity-fuzz profile declared — the "
                "differential sweep would silently skip it"
            )
        for profile in spec.fuzz:
            try:
                spec.validate(dict(profile.params))
            except ParameterError as exc:
                problems.append(f"algorithm {name!r}: fuzz profile invalid: {exc}")
        if not _numpy_available():
            continue
        from repro.network.batch import build_batch_kernel

        kernel = build_batch_kernel(instance)
        if kernel is None:
            problems.append(
                f"algorithm {name!r}: kernel binding {spec.kernel_binding!r} "
                "declared but build_batch_kernel found no kernel"
            )
            continue
        if not isinstance(kernel, spec.kernel_class()):
            problems.append(
                f"algorithm {name!r}: built kernel {type(kernel).__name__} is "
                f"not the declared {spec.kernel_binding!r}"
            )
        if kernel.deterministic != spec.batch_deterministic:
            problems.append(
                f"algorithm {name!r}: declared batch_deterministic="
                f"{spec.batch_deterministic} but the kernel reports "
                f"{kernel.deterministic}"
            )
        if (kernel.fields == 1) != spec.flat_state:
            problems.append(
                f"algorithm {name!r}: declared flat_state={spec.flat_state} "
                f"but the kernel encodes {kernel.fields} field(s)"
            )


def _check_adversaries(
    algorithms: Mapping[str, AlgorithmSemantics],
    adversaries: Mapping[str, AdversarySemantics],
    problems: list[str],
) -> None:
    flat_algorithm = _build_probe(algorithms, _FLAT_PROBE)
    boosted_algorithm = _build_probe(algorithms, _BOOSTED_PROBE)
    numpy_ok = _numpy_available()
    if numpy_ok:
        from repro.network.batch import build_batch_kernel

        flat_kernel = build_batch_kernel(flat_algorithm)
        boosted_kernel = build_batch_kernel(boosted_algorithm)

    for name, spec in adversaries.items():
        if name != spec.name:
            problems.append(f"strategy {name!r}: catalogue key != spec name {spec.name!r}")
            continue
        if name == "none":
            if spec.scalar_binding is not None or spec.kernel_binding is not None:
                problems.append("strategy 'none' must not bind classes (it never forges)")
            if not spec.determinism.bit_identical:
                problems.append(
                    "strategy 'none' forges nothing and must declare a "
                    "bit-identical determinism class"
                )
            continue

        # Scalar determinism: the declared flag must match the RNG stream
        # consumption the forge path actually exhibits on some encoding.
        try:
            consumed = [
                _scalar_rng_consumed(spec, flat_algorithm),
                _scalar_rng_consumed(spec, boosted_algorithm),
            ]
        except Exception as exc:  # noqa: BLE001 - report, don't crash the audit
            problems.append(f"strategy {name!r}: scalar probe failed: {exc}")
            continue
        if spec.scalar_deterministic and any(consumed):
            problems.append(
                f"strategy {name!r}: declared scalar-deterministic but the "
                "forge path consumed adversary randomness"
            )
        if not spec.scalar_deterministic and not any(consumed):
            problems.append(
                f"strategy {name!r}: declared scalar-randomised but the forge "
                "path consumed no randomness on any probed encoding"
            )

        if not numpy_ok:
            continue
        try:
            kernel_cls = spec.kernel_class()
        except Exception as exc:  # noqa: BLE001
            problems.append(f"strategy {name!r}: kernel binding broken: {exc}")
            continue
        if kernel_cls.strategy != name:
            problems.append(
                f"strategy {name!r}: kernel class {kernel_cls.__name__} "
                f"declares strategy {kernel_cls.strategy!r}"
            )
        defaults = {p.name: p.default for p in spec.parameters}
        for label, kernel, declared in (
            ("flat", flat_kernel, spec.determinism.flat),
            ("boosted", boosted_kernel, spec.determinism.boosted),
        ):
            try:
                drew = _batch_rng_consumed(kernel_cls, kernel, defaults)
            except Exception as exc:  # noqa: BLE001
                problems.append(
                    f"strategy {name!r}: batch probe ({label}) failed: {exc}"
                )
                continue
            if declared and drew:
                problems.append(
                    f"strategy {name!r}: determinism class declares "
                    f"bit-identity for {label} encodings but the kernel "
                    "consumed NumPy randomness"
                )
            if not declared and not drew:
                problems.append(
                    f"strategy {name!r}: determinism class declares "
                    f"statistical equivalence for {label} encodings but the "
                    "kernel consumed no NumPy randomness"
                )


def _check_schedules(
    adversaries: Mapping[str, AdversarySemantics],
    schedules: Mapping[str, FaultScheduleSemantics],
    problems: list[str],
) -> None:
    for name, spec in schedules.items():
        if name != spec.name:
            problems.append(
                f"fault schedule {name!r}: catalogue key != spec name {spec.name!r}"
            )
            continue
        try:
            schedule = spec.build()
        except Exception as exc:  # noqa: BLE001 - report, don't crash the audit
            problems.append(
                f"fault schedule {name!r}: declared defaults do not build: {exc}"
            )
            continue
        for window in schedule.windows:
            if window.strategy not in adversaries:
                problems.append(
                    f"fault schedule {name!r}: window at round {window.start} "
                    f"uses undeclared strategy {window.strategy!r}"
                )
                continue
            try:
                adversaries[window.strategy].validate(dict(window.params))
            except ParameterError as exc:
                problems.append(
                    f"fault schedule {name!r}: window at round {window.start}: {exc}"
                )
        schema = {p.name for p in spec.parameters}
        for axis, choices in spec.fuzz_param_choices:
            if axis not in schema:
                problems.append(
                    f"fault schedule {name!r}: fuzz axis {axis!r} is outside "
                    "the declared parameter schema"
                )
                continue
            for choice in choices:
                try:
                    spec.build(**{axis: choice})
                except Exception as exc:  # noqa: BLE001
                    problems.append(
                        f"fault schedule {name!r}: fuzz choice {axis}={choice!r} "
                        f"does not build: {exc}"
                    )
        if spec.batch_covered:
            problems.append(
                f"fault schedule {name!r}: declared batch_covered=True but the "
                "batch engine has no schedule execution path — schedules must "
                "degrade to the scalar engine via a named fallback"
            )


def verify(
    algorithms: Mapping[str, AlgorithmSemantics] | None = None,
    adversaries: Mapping[str, AdversarySemantics] | None = None,
    schedules: Mapping[str, FaultScheduleSemantics] | None = None,
) -> list[str]:
    """Cross-check the declared semantics against the implementations.

    Returns a list of human-readable problems; an empty list means every
    declaration held up.  ``algorithms`` / ``adversaries`` / ``schedules``
    default to the real catalogue — tests pass tampered mappings to assert
    that mis-declarations are caught.
    """
    algorithms = dict(ALGORITHM_SEMANTICS if algorithms is None else algorithms)
    adversaries = dict(ADVERSARY_SEMANTICS if adversaries is None else adversaries)
    schedules = dict(
        FAULT_SCHEDULE_SEMANTICS if schedules is None else schedules
    )
    problems: list[str] = []
    _check_algorithms(algorithms, problems)
    _check_schedules(adversaries, schedules, problems)
    for probe_name, _ in (_FLAT_PROBE, _BOOSTED_PROBE):
        if probe_name not in algorithms:
            problems.append(
                f"probe algorithm {probe_name!r} missing from the catalogue; "
                "adversary determinism cannot be verified"
            )
            return problems
    _check_adversaries(algorithms, adversaries, problems)
    return problems
