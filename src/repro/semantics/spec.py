"""Declarative component semantics: the dataclasses of the single-source layer.

A component — an algorithm or an adversary strategy — used to describe itself
three times: once as a scalar class, once as a NumPy batch kernel, and once
implicitly in the parity harness's expectations.  The dataclasses here hold
that description exactly once:

* :class:`AlgorithmSemantics` — the algorithm's state space (flat integers vs
  the :class:`~repro.counters.kernels.BoostedStateCodec` layout), parameter
  schema with defaults, scalar/batch determinism, kernel binding and the
  parity-fuzz profiles its registry entry is swept with;
* :class:`AdversarySemantics` — the strategy's parameter schema, scalar class
  and kernel bindings, scalar determinism and the per-state-space
  :class:`DeterminismClass` the batch kernel promises;
* :class:`DeterminismClass` — the batch-vs-scalar equivalence contract,
  refined by the state encoding (the adaptive-split fabrication path is pure
  for flat integer counters but draws randomness for boosted states).

Bindings to scalar classes and kernel classes are stored as
``"module:attribute"`` strings and resolved lazily, so this module imports
neither NumPy nor the engine modules — the spec layer stays importable in
NumPy-less environments and never participates in import cycles.
"""

from __future__ import annotations

from dataclasses import dataclass
from importlib import import_module
from typing import Any, Callable, Iterable, Mapping

from repro.core.errors import ParameterError

__all__ = [
    "Parameter",
    "DeterminismClass",
    "BIT_IDENTICAL",
    "FLAT_ONLY",
    "STATISTICAL",
    "FuzzProfile",
    "AlgorithmSemantics",
    "AdversarySemantics",
    "FaultScheduleSemantics",
    "flat_encoding",
    "format_schema",
    "resolve_binding",
    "validate_parameters",
]


def resolve_binding(binding: str) -> Any:
    """Resolve a lazy ``"module:attribute"`` binding to the named object."""
    module_name, _, attribute = binding.partition(":")
    if not module_name or not attribute:
        raise ParameterError(
            f"malformed binding {binding!r}; expected 'module:attribute'"
        )
    return getattr(import_module(module_name), attribute)


def flat_encoding(kernel: Any) -> bool:
    """Whether a batch kernel encodes flat integer states (one int64 field).

    This is the state-space predicate the encoding-dependent determinism
    classes are refined by: one field *and* integer scalar states (boosted
    codecs always carry the phase king registers as extra fields).
    """
    return kernel.fields == 1 and isinstance(
        kernel.algorithm.default_state(), int
    )


@dataclass(frozen=True)
class Parameter:
    """One entry of a component's parameter schema."""

    name: str
    default: Any
    help: str = ""


def format_schema(parameters: Iterable[Parameter]) -> str:
    """Render a parameter schema for error messages and ``list --verbose``."""
    rendered = ", ".join(
        f"{parameter.name} (default {parameter.default!r})"
        for parameter in parameters
    )
    return rendered or "(no parameters)"


def validate_parameters(
    kind: str,
    name: str,
    parameters: tuple[Parameter, ...],
    given: Mapping[str, Any],
) -> None:
    """Reject parameters outside the schema with the schema in the message."""
    unknown = sorted(set(given) - {parameter.name for parameter in parameters})
    if unknown:
        raise ParameterError(
            f"unknown parameter(s) {', '.join(map(repr, unknown))} for "
            f"{kind} {name!r}; accepted parameters: "
            f"{format_schema(parameters)}"
        )


@dataclass(frozen=True)
class DeterminismClass:
    """Batch-vs-scalar equivalence of a strategy, per state encoding.

    ``flat`` / ``boosted`` state whether the strategy's batch kernel consumes
    NumPy randomness against flat integer encodings and against boosted
    (structured) encodings respectively: ``True`` means the kernel is pure
    there, so batch executions are bit-identical to the scalar engine.
    """

    flat: bool
    boosted: bool

    def for_flat(self, flat: bool) -> bool:
        """The answer for one concrete encoding."""
        return self.flat if flat else self.boosted

    def for_kernel(self, kernel: Any) -> bool:
        """The answer for one concrete algorithm kernel instance."""
        return self.for_flat(flat_encoding(kernel))

    @property
    def bit_identical(self) -> bool:
        """Pure against every state encoding."""
        return self.flat and self.boosted

    def note(self) -> str:
        """The human-readable coverage note of this equivalence class."""
        if self.flat and self.boosted:
            return "bit-identical"
        if self.flat:
            return (
                "bit-identical for flat counters, "
                "statistically equivalent for boosted states"
            )
        if self.boosted:
            return (
                "statistically equivalent for flat counters, "
                "bit-identical for boosted states"
            )
        return "statistically equivalent (NumPy RNG)"


#: The three classes the registered strategies actually inhabit.
BIT_IDENTICAL = DeterminismClass(flat=True, boosted=True)
FLAT_ONLY = DeterminismClass(flat=True, boosted=False)
STATISTICAL = DeterminismClass(flat=False, boosted=False)


@dataclass(frozen=True)
class FuzzProfile:
    """One parity-fuzz grid entry for an algorithm.

    ``params`` parameterise the registry build, ``max_faults`` bounds the
    sampled fault counts and ``max_rounds`` caps the per-configuration round
    budget so the slowest configurations stay test-suite cheap.
    """

    params: tuple[tuple[str, Any], ...]
    max_faults: int
    max_rounds: int


@dataclass(frozen=True)
class AlgorithmSemantics:
    """The single declarative description of one registry algorithm.

    Attributes
    ----------
    name / description / model / source:
        Registry metadata: the registry key, the one-line listing text, the
        communication model (``"broadcast"`` / ``"pulling"``) and the paper
        reference.
    build:
        The factory callable (keyword parameters per :attr:`parameters`).
        Heavy imports happen inside the callable, never at spec time.
    parameters:
        The full parameter schema with defaults; ``build`` accepts exactly
        these names.
    scalar_deterministic:
        Whether the built scalar component draws internal randomness
        (construction- or run-time; the registry's ``deterministic`` flag).
    batch_deterministic:
        Whether the default-parameterisation batch kernel's ``step`` is a
        pure function (consumes no NumPy randomness) — the bit-identity leg
        of the parity contract.  Note the two flags are independent:
        ``pseudo-random-boosted`` seeds its pull plans at construction
        (scalar-randomised) yet replays them purely per round
        (batch-deterministic).
    flat_state:
        ``True`` when states are flat integers (one int64 kernel field),
        ``False`` for the boosted codec layout.
    kernel_binding:
        Lazy ``"module:attribute"`` binding of the vectorised kernel class.
    rng_note:
        Where the scalar component's randomness comes from (empty when
        deterministic).
    fuzz:
        The parity-fuzz profiles this entry is swept with; every registry
        algorithm must declare at least one so parity coverage is automatic.
    """

    name: str
    description: str
    model: str
    source: str
    build: Callable[..., Any]
    parameters: tuple[Parameter, ...]
    scalar_deterministic: bool
    batch_deterministic: bool
    flat_state: bool
    kernel_binding: str
    rng_note: str = ""
    fuzz: tuple[FuzzProfile, ...] = ()

    def kernel_class(self) -> Any:
        """Resolve the vectorised kernel class (imports NumPy)."""
        return resolve_binding(self.kernel_binding)

    def validate(self, params: Mapping[str, Any]) -> None:
        """Reject parameters outside the schema (:class:`ParameterError`)."""
        validate_parameters("algorithm", self.name, self.parameters, params)


@dataclass(frozen=True)
class AdversarySemantics:
    """The single declarative description of one adversary strategy.

    Attributes
    ----------
    name / description / source:
        The strategy name, the one-line listing text and the paper reference.
    scalar_binding / kernel_binding:
        Lazy ``"module:attribute"`` bindings of the scalar
        :class:`~repro.network.adversary.Adversary` class and the vectorised
        :class:`~repro.network.batch.AdversaryBatchKernel` class.  Both are
        ``None`` for the fault-free ``"none"`` strategy, which forges
        nothing.
    parameters:
        The strategy's parameter schema (beyond the ``faulty`` set every
        strategy takes).
    scalar_deterministic:
        Whether the scalar ``forge`` path draws from the adversary RNG
        stream for *any* state type.
    determinism:
        The batch kernel's :class:`DeterminismClass` — the per-encoding
        equivalence contract the executor, the coverage notes and the parity
        harness all read.
    fuzz_param_choices:
        Optional-parameter axes for the parity sweep: ``(name, choices)``
        pairs each exercised with probability one half per sampled
        configuration.
    """

    name: str
    description: str
    scalar_binding: str | None
    kernel_binding: str | None
    parameters: tuple[Parameter, ...]
    scalar_deterministic: bool
    determinism: DeterminismClass
    source: str = "Section 2 (Byzantine model)"
    fuzz_param_choices: tuple[tuple[str, tuple[Any, ...]], ...] = ()

    def scalar_class(self) -> Any:
        """Resolve the scalar adversary class (``None`` strategy has none)."""
        if self.scalar_binding is None:
            raise ParameterError(
                f"strategy {self.name!r} has no scalar adversary class"
            )
        return resolve_binding(self.scalar_binding)

    def kernel_class(self) -> Any:
        """Resolve the vectorised kernel class (imports NumPy)."""
        if self.kernel_binding is None:
            raise ParameterError(
                f"strategy {self.name!r} has no batch kernel class"
            )
        return resolve_binding(self.kernel_binding)

    def coverage_note(self) -> str:
        """The batch-engine coverage note shown by discovery surfaces."""
        if self.kernel_binding is None:
            return "bit-identical (no forgeries)"
        return self.determinism.note()

    def validate(self, params: Mapping[str, Any]) -> None:
        """Reject parameters outside the schema (:class:`ParameterError`)."""
        validate_parameters("adversary strategy", self.name, self.parameters, params)


@dataclass(frozen=True)
class FaultScheduleSemantics:
    """The single declarative description of one fault-schedule preset.

    Fault schedules compose the registered adversary strategies over
    time-varying faulty sets (churn, rotation, late wake-up); a preset is a
    parameterised builder returning a
    :class:`~repro.faults.schedule.FaultSchedule`.  Like every other
    component, which presets exist, what parameters they take and how the
    parity harness sweeps them is declared here once and derived everywhere
    else (registries, CLI discovery, the fuzz sweep).

    Attributes
    ----------
    name / description / source:
        The preset name, the one-line listing text and the paper reference.
    builder_binding:
        Lazy ``"module:attribute"`` binding of the builder callable
        (statically checked by the CAT001 lint rule like every binding).
    parameters:
        The builder's full parameter schema with defaults.
    scalar_deterministic:
        Always ``True`` in the current presets: schedule randomness (drawn
        faulty sets, rejoin states) comes from the run's dedicated
        ``"faults"`` stream, so fixed seeds replay fixed schedules.
    batch_covered:
        Whether the vectorised engine executes the preset.  ``False`` means
        campaign batching must degrade to the scalar engine via a *named*
        fallback reason — never silently.
    fuzz_param_choices:
        Optional-parameter axes for the parity sweep, as ``(name, choices)``
        pairs (same shape as the adversary axes).
    """

    name: str
    description: str
    builder_binding: str
    parameters: tuple[Parameter, ...]
    scalar_deterministic: bool = True
    batch_covered: bool = False
    source: str = "Section 2 (self-stabilisation)"
    fuzz_param_choices: tuple[tuple[str, tuple[Any, ...]], ...] = ()

    def builder(self) -> Callable[..., Any]:
        """Resolve the builder callable (imports :mod:`repro.faults`)."""
        return resolve_binding(self.builder_binding)

    def build(self, **params: Any) -> Any:
        """Validate ``params`` against the schema and build the schedule."""
        self.validate(params)
        merged = {p.name: p.default for p in self.parameters}
        merged.update(params)
        return self.builder()(**merged)

    def validate(self, params: Mapping[str, Any]) -> None:
        """Reject parameters outside the schema (:class:`ParameterError`)."""
        validate_parameters("fault schedule", self.name, self.parameters, params)
