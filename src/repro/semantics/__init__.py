"""Single source of truth for component semantics.

Every discovery and execution surface — the algorithm registry, the scalar
adversary factory, the batch kernel dispatch, the parity-fuzz sweep, the
component registry behind ``python -m repro list`` and the README coverage
matrix — derives its knowledge about components from the specs declared
here.  See :mod:`repro.semantics.spec` for the dataclasses,
:mod:`repro.semantics.catalog` for the declarations and
:mod:`repro.semantics.selfcheck` for the empirical audit.
"""

from repro.semantics.catalog import (
    ADVERSARY_SEMANTICS,
    ALGORITHM_SEMANTICS,
    FAULT_SCHEDULE_SEMANTICS,
    active_strategy_names,
    adversary_coverage_notes,
    adversary_semantics,
    algorithm_names,
    algorithm_semantics,
    fault_schedule_descriptions,
    fault_schedule_names,
    fault_schedule_semantics,
    strategy_descriptions,
    strategy_names,
)
from repro.semantics.selfcheck import verify
from repro.semantics.spec import (
    BIT_IDENTICAL,
    FLAT_ONLY,
    STATISTICAL,
    AdversarySemantics,
    AlgorithmSemantics,
    DeterminismClass,
    FaultScheduleSemantics,
    FuzzProfile,
    Parameter,
    flat_encoding,
    format_schema,
    resolve_binding,
    validate_parameters,
)

__all__ = [
    "ADVERSARY_SEMANTICS",
    "ALGORITHM_SEMANTICS",
    "AdversarySemantics",
    "AlgorithmSemantics",
    "BIT_IDENTICAL",
    "DeterminismClass",
    "FAULT_SCHEDULE_SEMANTICS",
    "FLAT_ONLY",
    "FaultScheduleSemantics",
    "FuzzProfile",
    "Parameter",
    "STATISTICAL",
    "active_strategy_names",
    "adversary_coverage_notes",
    "adversary_semantics",
    "algorithm_names",
    "algorithm_semantics",
    "fault_schedule_descriptions",
    "fault_schedule_names",
    "fault_schedule_semantics",
    "flat_encoding",
    "format_schema",
    "resolve_binding",
    "strategy_descriptions",
    "strategy_names",
    "validate_parameters",
    "verify",
]
