"""Catalogue facts exposed for the static flow analysis (FLW rules).

The flow pass (:mod:`repro.lint.flow`) cross-checks *inferred* effect
summaries against the *declared* determinism classes.  This module is the
bridge: it folds :mod:`repro.semantics.catalog` into per-kernel-class
expectations the linter can consume without touching dataclass internals.

One kernel class may serve several catalogue entries (the boosted kernel
backs both phase-king variants; :class:`SampledBoostedBatchKernel` backs the
sampled — randomised — *and* the pseudo-random — deterministic — counters,
depending on construction parameters).  The fold is therefore three-valued:

``"pure"``
    every entry binding the kernel declares it deterministic — the flow
    pass must prove the kernel RNG-free on all paths (FLW003 on failure);
``"draws"``
    every entry declares randomness — no purity obligation;
``"mixed"``
    the entries disagree, so purity is configuration-dependent and cannot
    be decided statically; the flow pass skips the kernel and the empirical
    :func:`repro.semantics.verify` probes remain the evidence.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["KernelExpectation", "kernel_expectations"]

#: Root methods the engines invoke per round, by component kind.
_ALGORITHM_ROOTS = ("step",)
_ADVERSARY_ROOTS = ("begin_round", "forge")


@dataclass(frozen=True)
class KernelExpectation:
    """The determinism obligation one kernel class carries.

    ``expectation`` is ``"pure"`` / ``"draws"`` / ``"mixed"`` as folded from
    every catalogue entry naming this ``binding``; ``declared_by`` lists
    those entries so a finding can cite the declarations it enforces.
    """

    binding: str
    kind: str
    expectation: str
    declared_by: tuple[str, ...]
    root_methods: tuple[str, ...]

    @property
    def module(self) -> str:
        return self.binding.partition(":")[0]

    @property
    def class_name(self) -> str:
        return self.binding.partition(":")[2]

    def to_dict(self) -> dict:
        return {
            "binding": self.binding,
            "kind": self.kind,
            "expectation": self.expectation,
            "declared_by": list(self.declared_by),
            "root_methods": list(self.root_methods),
        }


def _fold(flags: list[bool]) -> str:
    if all(flags):
        return "pure"
    if not any(flags):
        return "draws"
    return "mixed"


def kernel_expectations() -> tuple[KernelExpectation, ...]:
    """Every catalogue-bound kernel class with its folded obligation."""
    from repro.semantics.catalog import (
        ADVERSARY_SEMANTICS,
        ALGORITHM_SEMANTICS,
    )

    algorithm_groups: dict[str, list] = {}
    for spec in ALGORITHM_SEMANTICS.values():
        algorithm_groups.setdefault(spec.kernel_binding, []).append(spec)
    adversary_groups: dict[str, list] = {}
    for spec in ADVERSARY_SEMANTICS.values():
        if spec.kernel_binding is not None:
            adversary_groups.setdefault(spec.kernel_binding, []).append(spec)

    expectations: list[KernelExpectation] = []
    for binding in sorted(algorithm_groups):
        specs = algorithm_groups[binding]
        expectations.append(
            KernelExpectation(
                binding=binding,
                kind="algorithm",
                expectation=_fold([spec.batch_deterministic for spec in specs]),
                declared_by=tuple(sorted(spec.name for spec in specs)),
                root_methods=_ALGORITHM_ROOTS,
            )
        )
    for binding in sorted(adversary_groups):
        specs = adversary_groups[binding]
        expectations.append(
            KernelExpectation(
                binding=binding,
                kind="adversary",
                expectation=_fold(
                    [spec.determinism.bit_identical for spec in specs]
                ),
                declared_by=tuple(sorted(spec.name for spec in specs)),
                root_methods=_ADVERSARY_ROOTS,
            )
        )
    return tuple(expectations)
