"""The component catalogue: every algorithm and adversary, described once.

This module is the single source of truth the rest of the stack derives its
component knowledge from:

* :func:`repro.counters.registry.default_registry` registers its factories
  (names, descriptions, parameter schemas, determinism flags) from
  :data:`ALGORITHM_SEMANTICS`;
* :data:`repro.network.adversary.STRATEGIES` and the generated
  ``STRATEGY_DESCRIPTIONS`` come from :data:`ADVERSARY_SEMANTICS`;
* :data:`repro.network.batch.ADVERSARY_BATCH_KERNELS`, the per-group
  bit-identity answers (``AdversaryBatchKernel.is_deterministic_for``) and
  :func:`~repro.network.batch.adversary_kernel_coverage` read the declared
  :class:`~repro.semantics.spec.DeterminismClass` instead of probing kernels;
* :mod:`repro.network.parity` generates its sweep space (``FUZZ_ALGORITHMS``,
  ``ALL_STRATEGIES``, the optional-parameter choices) and its equivalence
  class expectations from the same specs;
* :func:`repro.scenarios.registry.default_component_registry` and the CLI
  discovery surfaces assemble their listings from here.

Builder callables import the implementation modules lazily, so importing the
catalogue pulls in neither NumPy nor the engines.  The declared facts are
cross-checked empirically by :func:`repro.semantics.selfcheck.verify`.
"""

from __future__ import annotations

from typing import Any

from repro.core.errors import ParameterError
from repro.semantics.spec import (
    BIT_IDENTICAL,
    FLAT_ONLY,
    STATISTICAL,
    AdversarySemantics,
    AlgorithmSemantics,
    FaultScheduleSemantics,
    FuzzProfile,
    Parameter,
)

__all__ = [
    "ALGORITHM_SEMANTICS",
    "ADVERSARY_SEMANTICS",
    "FAULT_SCHEDULE_SEMANTICS",
    "algorithm_names",
    "algorithm_semantics",
    "adversary_semantics",
    "active_strategy_names",
    "strategy_names",
    "strategy_descriptions",
    "adversary_coverage_notes",
    "fault_schedule_names",
    "fault_schedule_semantics",
    "fault_schedule_descriptions",
]


# ---------------------------------------------------------------------- #
# Algorithm builders (lazy imports keep the spec layer dependency-free)
# ---------------------------------------------------------------------- #


def _build_trivial(c: int = 2) -> Any:
    from repro.counters.trivial import TrivialCounter

    return TrivialCounter(c=c)


def _build_naive_majority(n: int = 4, c: int = 2, claimed_resilience: int = 0) -> Any:
    from repro.counters.naive import NaiveMajorityCounter

    return NaiveMajorityCounter(n=n, c=c, claimed_resilience=claimed_resilience)


def _build_randomized_follow_majority(
    n: int = 4, f: int = 1, c: int = 2, seed: int = 0
) -> Any:
    from repro.counters.randomized import RandomizedFollowMajorityCounter

    return RandomizedFollowMajorityCounter(n=n, f=f, c=c, seed=seed)


def _build_corollary1(c: int = 2, f: int = 1) -> Any:
    from repro.core.recursion import optimal_resilience_counter

    return optimal_resilience_counter(f=f, c=c)


def _build_figure2(levels: int = 1, c: int = 2) -> Any:
    from repro.core.recursion import figure2_counter

    return figure2_counter(levels=levels, c=c)


def _build_sampled_boosted(
    c: int = 2,
    k: int = 3,
    inner_f: int = 1,
    inner_c: int = 960,
    sample_size: int | None = 4,
) -> Any:
    # The defaults mirror the Corollary 4 experiment: the 12-node
    # A(12, 3)-equivalent sampled counter over the A(4, 1) inner with
    # counter size 960 (the multiple required by k = 3, F = 3).
    from repro.core.recursion import optimal_resilience_counter
    from repro.sampling.pull_boosting import SampledBoostedCounter

    inner = optimal_resilience_counter(f=inner_f, c=inner_c)
    return SampledBoostedCounter(
        inner=inner, k=k, counter_size=c, sample_size=sample_size
    )


def _build_pseudo_random_boosted(
    c: int = 2,
    k: int = 3,
    inner_f: int = 1,
    inner_c: int = 960,
    sample_size: int | None = 4,
    link_seed: int = 0,
) -> Any:
    from repro.core.recursion import optimal_resilience_counter
    from repro.sampling.pseudo_random import PseudoRandomBoostedCounter

    inner = optimal_resilience_counter(f=inner_f, c=inner_c)
    return PseudoRandomBoostedCounter(
        inner=inner,
        k=k,
        counter_size=c,
        sample_size=sample_size,
        link_seed=link_seed,
    )


#: Every executable registry algorithm, in registration (and parity-sweep)
#: order.  The dict order is load-bearing: the parity harness derives its
#: seeded sweep space from it, so reordering entries would change sampled
#: configurations.
ALGORITHM_SEMANTICS: dict[str, AlgorithmSemantics] = {
    spec.name: spec
    for spec in (
        AlgorithmSemantics(
            name="trivial",
            description="0-resilient single-node counter (base case of Corollary 1)",
            model="broadcast",
            source="Section 4.1",
            build=_build_trivial,
            parameters=(Parameter("c", 2, "counter size"),),
            scalar_deterministic=True,
            batch_deterministic=True,
            flat_state=True,
            kernel_binding="repro.counters.kernels:TrivialBatchKernel",
            fuzz=(FuzzProfile(params=(("c", 4),), max_faults=0, max_rounds=24),),
        ),
        AlgorithmSemantics(
            name="naive-majority",
            description="fault-intolerant follow-the-majority counter (negative baseline)",
            model="broadcast",
            source="baseline",
            build=_build_naive_majority,
            parameters=(
                Parameter("n", 4, "number of nodes"),
                Parameter("c", 2, "counter size"),
                Parameter("claimed_resilience", 0, "the f the baseline pretends to tolerate"),
            ),
            scalar_deterministic=True,
            batch_deterministic=True,
            flat_state=True,
            kernel_binding="repro.counters.kernels:NaiveMajorityBatchKernel",
            fuzz=(
                FuzzProfile(
                    params=(("n", 6), ("c", 3), ("claimed_resilience", 1)),
                    max_faults=1,
                    max_rounds=40,
                ),
                FuzzProfile(
                    params=(("n", 9), ("c", 4), ("claimed_resilience", 2)),
                    max_faults=2,
                    max_rounds=48,
                ),
            ),
        ),
        AlgorithmSemantics(
            name="randomized-follow-majority",
            description="randomised counter of [6, 7]: random states until a clear majority",
            model="broadcast",
            source="Table 1, [6, 7]",
            build=_build_randomized_follow_majority,
            parameters=(
                Parameter("n", 4, "number of nodes"),
                Parameter("f", 1, "tolerated faults"),
                Parameter("c", 2, "counter size"),
                Parameter("seed", 0, "per-node coin-flip seed offset"),
            ),
            scalar_deterministic=False,
            batch_deterministic=False,
            flat_state=True,
            kernel_binding="repro.counters.kernels:RandomizedFollowMajorityBatchKernel",
            rng_note="per-round coin flips until a clear majority emerges",
            fuzz=(
                FuzzProfile(
                    params=(("n", 7), ("f", 2), ("c", 2)),
                    max_faults=2,
                    max_rounds=90,
                ),
            ),
        ),
        AlgorithmSemantics(
            name="corollary1",
            description="optimal-resilience counter built from trivial counters (Corollary 1)",
            model="broadcast",
            source="Corollary 1",
            build=_build_corollary1,
            parameters=(
                Parameter("c", 2, "counter size"),
                Parameter("f", 1, "tolerated faults"),
            ),
            scalar_deterministic=True,
            batch_deterministic=True,
            flat_state=False,
            kernel_binding="repro.counters.kernels:BoostedBatchKernel",
            fuzz=(
                FuzzProfile(
                    params=(("f", 1), ("c", 2)), max_faults=1, max_rounds=260
                ),
            ),
        ),
        AlgorithmSemantics(
            name="figure2",
            description="recursive k=3 construction of Figure 2: A(4,1) -> A(12,3) -> A(36,7)",
            model="broadcast",
            source="Figure 2 / Theorem 1",
            build=_build_figure2,
            parameters=(
                Parameter("levels", 1, "recursion depth"),
                Parameter("c", 2, "counter size"),
            ),
            scalar_deterministic=True,
            batch_deterministic=True,
            flat_state=False,
            kernel_binding="repro.counters.kernels:BoostedBatchKernel",
            fuzz=(
                FuzzProfile(
                    params=(("levels", 1), ("c", 2)), max_faults=3, max_rounds=160
                ),
            ),
        ),
        AlgorithmSemantics(
            name="sampled-boosted",
            description="pulling-model boosted counter with sampled voting (Theorem 4)",
            model="pulling",
            source="Theorem 4 / Corollary 4",
            build=_build_sampled_boosted,
            parameters=(
                Parameter("c", 2, "counter size"),
                Parameter("k", 3, "blocks per level"),
                Parameter("inner_f", 1, "inner counter resilience"),
                Parameter("inner_c", 960, "inner counter size"),
                Parameter("sample_size", 4, "pulls per block per round (M)"),
            ),
            scalar_deterministic=False,
            batch_deterministic=False,
            flat_state=False,
            kernel_binding="repro.sampling.kernels:SampledBoostedBatchKernel",
            rng_note="fresh per-round pull samples (Theorem 4)",
            fuzz=(
                FuzzProfile(
                    params=(("sample_size", 2),), max_faults=1, max_rounds=40
                ),
            ),
        ),
        AlgorithmSemantics(
            name="pseudo-random-boosted",
            description="pulling-model counter with sampling fixed by a link seed (Corollary 5)",
            model="pulling",
            source="Corollary 5",
            build=_build_pseudo_random_boosted,
            parameters=(
                Parameter("c", 2, "counter size"),
                Parameter("k", 3, "blocks per level"),
                Parameter("inner_f", 1, "inner counter resilience"),
                Parameter("inner_c", 960, "inner counter size"),
                Parameter("sample_size", 4, "pulls per block per round (M)"),
                Parameter("link_seed", 0, "seed fixing the pull plans at construction"),
            ),
            # Construction consumes the link seed's randomness, but the fixed
            # plans are replayed purely per round — so the scalar component
            # counts as randomised while the batch kernel is bit-identical.
            scalar_deterministic=False,
            batch_deterministic=True,
            flat_state=False,
            kernel_binding="repro.sampling.kernels:SampledBoostedBatchKernel",
            rng_note="pull plans fixed at construction from link_seed (Corollary 5)",
            fuzz=(
                FuzzProfile(
                    params=(("sample_size", 3),), max_faults=1, max_rounds=60
                ),
            ),
        ),
    )
}


#: Every adversary strategy name accepted by ``build_adversary``, including
#: the fault-free ``"none"``.
ADVERSARY_SEMANTICS: dict[str, AdversarySemantics] = {
    spec.name: spec
    for spec in (
        AdversarySemantics(
            name="none",
            description="fault-free adversary (F is empty); use for 0-fault grid rows",
            scalar_binding=None,
            kernel_binding=None,
            parameters=(),
            scalar_deterministic=True,
            determinism=BIT_IDENTICAL,
        ),
        AdversarySemantics(
            name="crash",
            description="faulty nodes appear stuck, always broadcasting the default state",
            scalar_binding="repro.network.adversary:CrashAdversary",
            kernel_binding="repro.network.batch:CrashBatchKernel",
            parameters=(),
            scalar_deterministic=True,
            determinism=BIT_IDENTICAL,
        ),
        AdversarySemantics(
            name="fixed-state",
            description="always broadcast one fixed attacker-chosen state (param 'state', default 0)",
            scalar_binding="repro.network.adversary:FixedStateAdversary",
            kernel_binding="repro.network.batch:FixedStateBatchKernel",
            parameters=(Parameter("state", 0, "the fixed (un-coerced) broadcast state"),),
            scalar_deterministic=True,
            determinism=BIT_IDENTICAL,
            fuzz_param_choices=(("state", (0, 1, 2, 3)),),
        ),
        AdversarySemantics(
            name="random-state",
            description="independently random valid state to every receiver",
            scalar_binding="repro.network.adversary:RandomStateAdversary",
            kernel_binding="repro.network.batch:RandomStateBatchKernel",
            parameters=(),
            scalar_deterministic=False,
            determinism=STATISTICAL,
        ),
        AdversarySemantics(
            name="split-state",
            description="one random state to even receivers, another to odd, redrawn each round",
            scalar_binding="repro.network.adversary:SplitStateAdversary",
            kernel_binding="repro.network.batch:SplitStateBatchKernel",
            parameters=(),
            scalar_deterministic=False,
            determinism=STATISTICAL,
        ),
        AdversarySemantics(
            name="mimic",
            description="echo a rotating correct node's real state, inconsistently across receivers",
            scalar_binding="repro.network.adversary:MimicAdversary",
            kernel_binding="repro.network.batch:MimicBatchKernel",
            parameters=(),
            scalar_deterministic=True,
            determinism=BIT_IDENTICAL,
        ),
        AdversarySemantics(
            name="phase-king-skew",
            description="copy a correct inner state but skew the phase king output register",
            scalar_binding="repro.network.adversary:PhaseKingSkewAdversary",
            kernel_binding="repro.network.batch:PhaseKingSkewBatchKernel",
            parameters=(Parameter("offset", 1, "shift applied to the a register"),),
            scalar_deterministic=False,
            determinism=STATISTICAL,
            fuzz_param_choices=(("offset", (1, 2, -1)),),
        ),
        AdversarySemantics(
            name="adaptive-split",
            description="show each receiver the camp opposite its own output to keep votes split",
            scalar_binding="repro.network.adversary:AdaptiveSplitAdversary",
            kernel_binding="repro.network.batch:AdaptiveSplitBatchKernel",
            parameters=(),
            # Draws randomness only when fabricating states for camp-less
            # boosted targets — the flag says "randomised" while the
            # determinism class carries the per-encoding split.
            scalar_deterministic=False,
            determinism=FLAT_ONLY,
        ),
    )
}


#: Every fault-schedule preset accepted by the scenario builder and the
#: campaign CLI's ``--fault-schedule``.  Schedules replace the per-run
#: adversary with a time-varying plan; none of them is vectorised, so the
#: batching layer degrades them to the scalar engine via a named fallback.
FAULT_SCHEDULE_SEMANTICS: dict[str, FaultScheduleSemantics] = {
    spec.name: spec
    for spec in (
        FaultScheduleSemantics(
            name="churn",
            description="nodes crash, return adversarial, then rejoin correct with arbitrary states",
            builder_binding="repro.faults.schedule:build_churn_schedule",
            parameters=(
                Parameter("start", 5, "round the cohort crashes"),
                Parameter("down", 6, "rounds of silence (crash phase)"),
                Parameter("adversarial", 6, "rounds of active Byzantine behaviour"),
                Parameter("num_faults", None, "cohort size (None -> algorithm f)"),
            ),
            fuzz_param_choices=(("start", (2, 5, 9)), ("down", (3, 6))),
        ),
        FaultScheduleSemantics(
            name="rolling",
            description="a fresh faulty set every period; previous cohort rejoins with random states",
            builder_binding="repro.faults.schedule:build_rolling_schedule",
            parameters=(
                Parameter("start", 0, "round the first rotation begins"),
                Parameter("period", 12, "rounds per rotation"),
                Parameter("rotations", 3, "number of rotations"),
                Parameter("strategy", "random-state", "strategy controlling each rotation"),
                Parameter("num_faults", None, "faults per rotation (None -> algorithm f)"),
            ),
            fuzz_param_choices=(("period", (8, 12)), ("rotations", (2, 3))),
        ),
        FaultScheduleSemantics(
            name="late-adversary",
            description="adversary wakes only after stabilisation, then releases its nodes",
            builder_binding="repro.faults.schedule:build_late_adversary_schedule",
            parameters=(
                Parameter("start", 30, "round the adversary wakes"),
                Parameter("duration", 10, "adversarial rounds (None -> until the end)"),
                Parameter("strategy", "random-state", "strategy controlling the window"),
                Parameter("num_faults", None, "nodes corrupted (None -> algorithm f)"),
            ),
            fuzz_param_choices=(("start", (20, 30)), ("duration", (6, 10))),
        ),
    )
}


# ---------------------------------------------------------------------- #
# Accessors
# ---------------------------------------------------------------------- #


def algorithm_names() -> tuple[str, ...]:
    """Registry algorithm names, in catalogue (registration/sweep) order."""
    return tuple(ALGORITHM_SEMANTICS)


def algorithm_semantics(name: str) -> AlgorithmSemantics:
    """The semantics of one registry algorithm."""
    try:
        return ALGORITHM_SEMANTICS[name]
    except KeyError:
        known = ", ".join(sorted(ALGORITHM_SEMANTICS))
        raise ParameterError(
            f"no semantics declared for algorithm {name!r}; "
            f"declared algorithms: {known}"
        ) from None


def adversary_semantics(name: str) -> AdversarySemantics:
    """The semantics of one adversary strategy (``"none"`` included)."""
    try:
        return ADVERSARY_SEMANTICS[name]
    except KeyError:
        known = ", ".join(strategy_names())
        raise ParameterError(
            f"no semantics declared for adversary strategy {name!r}; "
            f"declared strategies: {known}"
        ) from None


def active_strategy_names() -> tuple[str, ...]:
    """Every strategy that controls faulty nodes, sorted (``"none"`` excluded)."""
    return tuple(sorted(name for name in ADVERSARY_SEMANTICS if name != "none"))


def strategy_names() -> tuple[str, ...]:
    """The full strategy vocabulary: ``"none"`` first, then sorted actives."""
    return ("none", *active_strategy_names())


def strategy_descriptions() -> dict[str, str]:
    """Strategy name -> one-line description, generated from the specs."""
    return {
        name: ADVERSARY_SEMANTICS[name].description for name in strategy_names()
    }


def fault_schedule_names() -> tuple[str, ...]:
    """Fault-schedule preset names, in catalogue order."""
    return tuple(FAULT_SCHEDULE_SEMANTICS)


def fault_schedule_semantics(name: str) -> FaultScheduleSemantics:
    """The semantics of one fault-schedule preset."""
    try:
        return FAULT_SCHEDULE_SEMANTICS[name]
    except KeyError:
        known = ", ".join(fault_schedule_names())
        raise ParameterError(
            f"no semantics declared for fault schedule {name!r}; "
            f"declared schedules: {known}"
        ) from None


def fault_schedule_descriptions() -> dict[str, str]:
    """Preset name -> one-line description, generated from the specs."""
    return {
        name: FAULT_SCHEDULE_SEMANTICS[name].description
        for name in fault_schedule_names()
    }


def adversary_coverage_notes() -> dict[str, str]:
    """Strategy name -> batch equivalence note, generated from the specs.

    The notes the discovery surfaces and the README coverage matrix show:
    derived from each strategy's declared :class:`DeterminismClass` (and
    cross-checked against the kernels' actual RNG consumption by
    :func:`repro.semantics.selfcheck.verify`), so they can never go stale
    the way a hand-written coverage table can.
    """
    return {
        name: ADVERSARY_SEMANTICS[name].coverage_note()
        for name in strategy_names()
    }
