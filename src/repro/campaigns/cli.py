"""Command-line interface for the campaign engine.

The same commands are mounted under the unified top-level CLI as
``python -m repro campaign <command>`` — the preferred spelling;
``python -m repro.campaigns`` remains as a compatible alias.

Usage (``python -m repro campaign <command>``)::

    # Write a campaign definition file
    python -m repro.campaigns define --name demo \\
        --algorithm "naive-majority:n=6,c=3,claimed_resilience=1" \\
        --adversary crash --adversary random-state \\
        --runs 25 --max-rounds 200 --stop-after-agreement 6 \\
        --out demo.campaign.json

    # Execute it (resumable; re-invoking skips completed runs)
    python -m repro.campaigns run demo.campaign.json --store demo.jsonl --jobs 4

    # Explicit resume (same as run — shown separately for discoverability)
    python -m repro.campaigns resume demo.campaign.json --store demo.jsonl

    # Stabilisation statistics from the store
    python -m repro.campaigns summarize demo.jsonl

    # Pulling-model grids (Theorem 4 / Corollary 4 message complexity)
    python -m repro.campaigns define --name pulls --model pulling \\
        --algorithm "sampled-boosted:sample_size=4" \\
        --adversary phase-king-skew --num-faults 1 \\
        --runs 10 --max-rounds 120 --out pulls.campaign.json

Algorithm arguments use ``name`` or ``name:key=value,key=value`` where the
names come from :func:`repro.counters.registry.default_registry` and values
are parsed as JSON scalars when possible (``levels=2`` is an int).  Pulling
campaigns (``--model pulling``) take pulling-model algorithm names
(``sampled-boosted``, ``pseudo-random-boosted``) and record per-run
``max_pulls`` / ``max_bits`` statistics in the result store.
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import sys
from typing import Any, Sequence

from repro.campaigns.executor import default_executor
from repro.campaigns.results import CampaignStore, RunResult, summarize_results
from repro.campaigns.runner import run_campaign
from repro.campaigns.spec import (
    ENGINES,
    FAULT_PATTERNS,
    MODELS,
    AlgorithmSpec,
    CampaignSpec,
)
from repro.core.errors import ReproError
from repro.semantics import strategy_names
from repro.obs.cli import add_observability_arguments, observation_from_args

__all__ = [
    "main",
    "build_parser",
    "register_commands",
    "dispatch",
    "parse_algorithm",
    "parse_num_faults",
    "parse_fault_schedule",
]


def _parse_scalar(text: str) -> Any:
    """Parse a parameter value: JSON scalar when possible, else the raw string."""
    try:
        return json.loads(text)
    except ValueError:
        return text


def parse_algorithm(argument: str) -> AlgorithmSpec:
    """Parse ``name`` or ``name:key=value,key=value`` into an AlgorithmSpec."""
    name, _, params_text = argument.partition(":")
    name = name.strip()
    if not name:
        raise argparse.ArgumentTypeError(f"empty algorithm name in {argument!r}")
    params: dict[str, Any] = {}
    if params_text.strip():
        for pair in params_text.split(","):
            key, sep, value = pair.partition("=")
            if not sep or not key.strip():
                raise argparse.ArgumentTypeError(
                    f"malformed algorithm parameter {pair!r} in {argument!r} "
                    "(expected key=value)"
                )
            params[key.strip()] = _parse_scalar(value.strip())
    return AlgorithmSpec.create(name, params)


def parse_num_faults(argument: str) -> int | None:
    """Parse a fault count; ``auto`` means the algorithm's resilience ``f``."""
    if argument.strip().lower() in ("auto", "f", "max"):
        return None
    try:
        return int(argument)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"num-faults must be an integer or 'auto', got {argument!r}"
        ) from None


def parse_fault_schedule(argument: str) -> tuple[str, tuple[tuple[str, Any], ...]]:
    """Parse ``name`` or ``name:key=value,key=value`` into a schedule reference.

    Same grammar as :func:`parse_algorithm`; the name is resolved (and the
    parameters validated) by :class:`~repro.campaigns.spec.CampaignSpec`.
    """
    name, _, params_text = argument.partition(":")
    name = name.strip()
    if not name:
        raise argparse.ArgumentTypeError(f"empty fault-schedule name in {argument!r}")
    params: dict[str, Any] = {}
    if params_text.strip():
        for pair in params_text.split(","):
            key, sep, value = pair.partition("=")
            if not sep or not key.strip():
                raise argparse.ArgumentTypeError(
                    f"malformed fault-schedule parameter {pair!r} in "
                    f"{argument!r} (expected key=value)"
                )
            params[key.strip()] = _parse_scalar(value.strip())
    return name, tuple(sorted(params.items()))


def _spec_from_args(args: argparse.Namespace) -> CampaignSpec:
    """Build a CampaignSpec from ``define`` flags."""
    schedule_name: str | None = None
    schedule_params: tuple[tuple[str, Any], ...] = ()
    if getattr(args, "fault_schedule", None) is not None:
        schedule_name, schedule_params = args.fault_schedule
    # A scheduled campaign owns its faulty set, so the baseline defaults to
    # the fault-free 'none' rows (an explicit --adversary still wins and is
    # then rejected by CampaignSpec with a descriptive error).
    default_adversaries = ["none"] if schedule_name is not None else ["random-state"]
    return CampaignSpec(
        name=args.name,
        algorithms=tuple(args.algorithm),
        adversaries=tuple(args.adversary or default_adversaries),
        num_faults=tuple(args.num_faults or [None]),
        runs_per_setting=args.runs,
        seed=args.seed,
        max_rounds=args.max_rounds,
        stop_after_agreement=args.stop_after_agreement,
        min_tail=args.min_tail,
        fault_pattern=args.fault_pattern,
        model=args.model,
        engine=args.engine,
        loss=getattr(args, "loss", 0.0),
        delay=getattr(args, "delay", 0),
        fault_schedule=schedule_name,
        fault_schedule_params=schedule_params,
    )


def register_commands(subparsers) -> None:
    """Register the campaign subcommands on an argparse subparser group.

    Used both by this module's standalone parser and by the unified
    ``python -m repro`` CLI (under its ``campaign`` subcommand).  Every
    subcommand sets a ``handler`` default consumed by :func:`dispatch`.
    """
    define = subparsers.add_parser(
        "define",
        help="write a campaign definition file from flags",
        description="Write a campaign definition file from flags.",
    )
    define.set_defaults(handler=_command_define)
    define.add_argument("--name", required=True, help="campaign name")
    define.add_argument(
        "--algorithm",
        action="append",
        required=True,
        type=parse_algorithm,
        metavar="NAME[:k=v,...]",
        help="registry algorithm with parameters (repeatable)",
    )
    define.add_argument(
        "--adversary",
        action="append",
        choices=list(strategy_names()),
        help="adversary strategy (repeatable; default: random-state)",
    )
    define.add_argument(
        "--num-faults",
        action="append",
        type=parse_num_faults,
        metavar="N|auto",
        help="faults per run (repeatable; default: auto = the algorithm's f)",
    )
    define.add_argument(
        "--model",
        choices=list(MODELS),
        default="broadcast",
        help=(
            "communication model of the grid: 'broadcast' (Section 2) or "
            "'pulling' (Section 5, records max_pulls/max_bits statistics)"
        ),
    )
    define.add_argument(
        "--engine",
        choices=list(ENGINES),
        default="auto",
        help=(
            "execution engine: 'auto' vectorises bit-identical run groups, "
            "'batch' forces the NumPy batch engine for every kernel-covered "
            "group, 'scalar' runs one simulation at a time"
        ),
    )
    define.add_argument("--runs", type=int, default=10, help="runs per grid setting")
    define.add_argument("--seed", type=int, default=0, help="campaign master seed")
    define.add_argument("--max-rounds", type=int, default=1000)
    define.add_argument(
        "--stop-after-agreement",
        type=int,
        default=20,
        help="early-stop window; 0 disables early stopping",
    )
    define.add_argument("--min-tail", type=int, default=2)
    define.add_argument(
        "--fault-pattern", choices=FAULT_PATTERNS, default="random"
    )
    define.add_argument(
        "--fault-schedule",
        type=parse_fault_schedule,
        metavar="NAME[:k=v,...]",
        help=(
            "named fault schedule with parameters, e.g. "
            "'churn:start=5,down=6' (see `repro list fault-schedules`); "
            "scheduled campaigns run fault-free baselines (adversary 'none') "
            "and the schedule drives the faulty set per round"
        ),
    )
    define.add_argument(
        "--loss",
        type=float,
        default=0.0,
        help=(
            "per-link message loss probability in [0, 1) — a lost link "
            "re-delivers the sender's previous broadcast (broadcast model only)"
        ),
    )
    define.add_argument(
        "--delay",
        type=int,
        default=0,
        help=(
            "maximum per-link message delay in rounds; each link delivers a "
            "uniformly random 0..DELAY-old broadcast (broadcast model only)"
        ),
    )
    define.add_argument("--out", required=True, help="path of the definition file")

    for verb, description in (
        ("run", "execute a campaign definition (skips completed runs)"),
        ("resume", "alias of 'run': continue an interrupted campaign"),
    ):
        executor_parser = subparsers.add_parser(
            verb, help=description, description=description
        )
        executor_parser.set_defaults(handler=_command_run)
        executor_parser.add_argument("spec", help="campaign definition file (JSON)")
        executor_parser.add_argument(
            "--store", required=True, help="JSONL result store (created if missing)"
        )
        executor_parser.add_argument(
            "--jobs",
            type=int,
            default=1,
            help="worker processes (>1 enables the multiprocessing executor)",
        )
        executor_parser.add_argument(
            "--chunksize",
            type=int,
            default=None,
            help="specs per worker task (parallel executor only)",
        )
        executor_parser.add_argument(
            "--engine",
            choices=list(ENGINES),
            default=None,
            help="override the definition file's execution engine",
        )
        executor_parser.add_argument(
            "--quiet", action="store_true", help="suppress per-run progress lines"
        )
        add_observability_arguments(executor_parser)

    summarize = subparsers.add_parser(
        "summarize",
        help="stabilisation statistics from a result store",
        description="Stabilisation statistics from a result store.",
    )
    summarize.set_defaults(handler=_command_summarize)
    summarize.add_argument("store", help="JSONL result store")
    summarize.add_argument(
        "--group-by",
        default="algorithm,adversary",
        help="comma-separated RunResult fields to group rows by",
    )
    summarize.add_argument(
        "--markdown", action="store_true", help="emit a Markdown table"
    )


def build_parser() -> argparse.ArgumentParser:
    """The standalone ``python -m repro.campaigns`` argument parser."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.campaigns",
        description="Define, run, resume and summarize simulation campaigns.",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)
    register_commands(subparsers)
    return parser


def _command_define(args: argparse.Namespace) -> int:
    spec = _spec_from_args(args)
    # Normalise 0 to None for "no early stopping".
    if spec.stop_after_agreement == 0:
        spec = CampaignSpec.from_dict({**spec.to_dict(), "stop_after_agreement": None})
    runs = spec.expand()
    with open(args.out, "w", encoding="utf-8") as handle:
        json.dump(spec.to_dict(), handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"wrote {args.out}: campaign '{spec.name}' with {len(runs)} runs")
    return 0


def _command_run(args: argparse.Namespace) -> int:
    with open(args.spec, "r", encoding="utf-8") as handle:
        spec = CampaignSpec.from_dict(json.load(handle))
    store = CampaignStore(args.store)
    engine = args.engine or spec.engine
    executor = default_executor(args.jobs, engine)
    if args.jobs and args.jobs > 1 and args.chunksize and hasattr(executor, "chunksize"):
        executor.chunksize = args.chunksize

    def progress(done: int, total: int, result: RunResult) -> None:
        status = "FAIL" if result.error else (
            f"stab@{result.stabilization_round}"
            if result.stabilized
            else "no-stab"
        )
        print(f"[{done}/{total}] {result.run_id}: {status}", flush=True)

    with observation_from_args(args) as observer:
        report = run_campaign(
            spec,
            store=store,
            executor=executor,
            progress=None if args.quiet else progress,
            observer=observer,
        )
    print(
        f"campaign '{spec.name}': {report.total} runs "
        f"({report.executed} executed, {report.skipped} resumed, "
        f"{report.failed} failed) in {report.elapsed:.2f}s -> {store.path}"
    )
    return 1 if report.failed else 0


def _command_summarize(args: argparse.Namespace) -> int:
    store = CampaignStore(args.store)
    results = list(store.latest_by_id().values())
    if not results:
        print(f"no results in {store.path}")
        return 1
    group_by = tuple(
        column.strip() for column in args.group_by.split(",") if column.strip()
    )
    valid_fields = {f.name for f in dataclasses.fields(RunResult)}
    unknown = [column for column in group_by if column not in valid_fields]
    if unknown:
        print(
            f"error: unknown --group-by field(s) {', '.join(unknown)}; "
            f"valid fields: {', '.join(sorted(valid_fields))}",
            file=sys.stderr,
        )
        return 2
    table = summarize_results(
        results, group_by=group_by, name=f"Campaign summary — {store.path}"
    )
    print(table.to_markdown() if args.markdown else table.format_table())
    return 0


def dispatch(args: argparse.Namespace) -> int:
    """Invoke a parsed command's handler with uniform error reporting.

    Expected failure modes (bad names, malformed files, missing paths)
    become one-line ``error:`` diagnostics with exit code 2 instead of
    tracebacks.  Shared with the unified ``python -m repro`` CLI.
    """
    try:
        return args.handler(args)
    except (ReproError, OSError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point for ``python -m repro.campaigns``."""
    return dispatch(build_parser().parse_args(argv))


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
