"""Compact per-run results and the JSONL campaign store.

A full :class:`~repro.network.trace.ExecutionTrace` is far too heavy to keep
for thousands of runs, so every executed run is reduced to a
:class:`RunResult` — the stabilisation statistics the experiments actually
consume (stabilisation round, agreement fraction, message counts) plus enough
identifying information to make the record self-describing.

:class:`CampaignStore` persists results as JSON Lines: one canonical-JSON
record per line, appended and flushed as runs complete.  Because every record
carries its ``run_id``, an interrupted campaign resumes by skipping the runs
already present in the store.
"""

from __future__ import annotations

import json
import os
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Any, Iterable, Iterator, Mapping, Sequence

from repro.analysis.metrics import (
    TrialMetrics,
    post_agreement_failure_rate,
    pull_statistics,
    trial_metrics,
)
from repro.network.stabilization import recovery_round
from repro.network.trace import ExecutionTrace

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.campaigns.spec import RunSpec
    from repro.core.algorithm import SynchronousCountingAlgorithm
    from repro.experiments.common import ExperimentResult

__all__ = ["RunResult", "CampaignStore", "reduce_trace", "summarize_results"]


@dataclass(frozen=True)
class RunResult:
    """The compact, JSON-serialisable outcome of one campaign run.

    Attributes
    ----------
    run_id:
        Stable identifier of the run inside its campaign (the resume key).
    algorithm / adversary:
        Human-readable labels of the algorithm and adversary strategy.
    n, f, c:
        Parameters of the executed algorithm.
    faulty:
        The Byzantine node set of the run.
    sim_seed:
        The simulator seed (results are reproducible from the run spec).
    rounds_simulated:
        Number of rounds executed before the trace ended.
    stabilized / stabilization_round / within_bound / agreement_fraction:
        The stabilisation statistics of :class:`~repro.analysis.metrics.TrialMetrics`.
    stopped_early:
        Whether the simulator stopped on the agreement window.
    messages_sent:
        Total messages delivered to correct receivers: ``rounds × n ×
        |correct|`` in the broadcast model, the total number of pulls issued
        by correct nodes in the pulling model.
    model:
        The communication model the run executed in (``"broadcast"`` /
        ``"pulling"``).
    max_pulls / mean_pulls / max_bits:
        Pulling-model message complexity: the per-round maximum/mean number
        of pulls a correct node issued and the worst-case per-round bit count
        (the Theorem 4 / Corollary 4 quantities).  ``None`` for broadcast
        runs.
    post_agreement_failure_rate:
        Fraction of rounds after the first agreement in which agreement
        broke — the empirical per-round failure probability of a sampled
        counter.  ``None`` for broadcast runs.
    last_perturbation_round / recovered / recovery_round / re_stabilization_time:
        Fault-injection recovery metrics
        (:func:`repro.network.stabilization.recovery_round`): the round of
        the last fault-schedule transition, whether the correct nodes
        re-stabilised after it, the absolute round they did, and the
        re-stabilisation time measured *from* the perturbation.  All
        ``None`` for runs without an injected perturbation (loss/delay are
        continuous noise, not discrete perturbations, so they do not set
        these).
    rng:
        ``None`` for runs whose randomness came from the scalar engine's
        ``random.Random`` streams (including every deterministic batch
        execution, which is bit-identical to them); the
        :data:`~repro.network.batch.BATCH_RNG_NOTE` marker for randomised
        runs executed by the NumPy batch engine, so a result store mixing
        engines stays self-describing.
    error:
        ``None`` for successful runs; otherwise ``"ExcType: message"`` — the
        executors never let one failed run abort a campaign.
    """

    run_id: str
    algorithm: str
    adversary: str
    n: int
    f: int
    c: int
    faulty: tuple[int, ...]
    sim_seed: int
    rounds_simulated: int
    stabilized: bool
    stabilization_round: int | None
    within_bound: bool | None
    agreement_fraction: float
    stopped_early: bool
    messages_sent: int
    error: str | None = None
    model: str = "broadcast"
    max_pulls: int | None = None
    mean_pulls: float | None = None
    max_bits: int | None = None
    post_agreement_failure_rate: float | None = None
    last_perturbation_round: int | None = None
    recovered: bool | None = None
    recovery_round: int | None = None
    re_stabilization_time: int | None = None
    rng: str | None = None

    def to_dict(self) -> dict[str, Any]:
        """Plain-dictionary form (tuples become lists)."""
        data = asdict(self)
        data["faulty"] = list(self.faulty)
        return data

    def to_json(self) -> str:
        """Canonical single-line JSON (sorted keys, no whitespace)."""
        return json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "RunResult":
        """Inverse of :meth:`to_dict`."""
        return cls(
            run_id=data["run_id"],
            algorithm=data["algorithm"],
            adversary=data["adversary"],
            n=int(data["n"]),
            f=int(data["f"]),
            c=int(data["c"]),
            faulty=tuple(data.get("faulty", ())),
            sim_seed=int(data.get("sim_seed", 0)),
            rounds_simulated=int(data.get("rounds_simulated", 0)),
            stabilized=bool(data.get("stabilized", False)),
            stabilization_round=data.get("stabilization_round"),
            within_bound=data.get("within_bound"),
            agreement_fraction=float(data.get("agreement_fraction", 0.0)),
            stopped_early=bool(data.get("stopped_early", False)),
            messages_sent=int(data.get("messages_sent", 0)),
            error=data.get("error"),
            model=data.get("model", "broadcast"),
            max_pulls=data.get("max_pulls"),
            mean_pulls=data.get("mean_pulls"),
            max_bits=data.get("max_bits"),
            post_agreement_failure_rate=data.get("post_agreement_failure_rate"),
            last_perturbation_round=data.get("last_perturbation_round"),
            recovered=data.get("recovered"),
            recovery_round=data.get("recovery_round"),
            re_stabilization_time=data.get("re_stabilization_time"),
            rng=data.get("rng"),
        )

    def to_trial_metrics(self) -> TrialMetrics:
        """Convert to the :class:`TrialMetrics` shape the experiments consume."""
        return TrialMetrics(
            stabilized=self.stabilized,
            stabilization_round=self.stabilization_round,
            rounds_simulated=self.rounds_simulated,
            within_bound=self.within_bound,
            agreement_fraction=self.agreement_fraction,
            faulty=self.faulty,
        )


def reduce_trace(
    spec: "RunSpec",
    algorithm: Any,
    trace: ExecutionTrace,
) -> RunResult:
    """Reduce a recorded execution to its compact campaign result.

    Works for both models: pulling-model traces (identified by the
    ``model: "pulling"`` trace metadata) additionally yield the Theorem 4
    message-complexity statistics (``max_pulls`` / ``mean_pulls`` /
    ``max_bits``) and the post-agreement failure rate, and their
    ``messages_sent`` counts actual pulls instead of ``rounds × n × correct``
    broadcasts.
    """
    metrics = trial_metrics(
        trace, bound=algorithm.stabilization_bound(), min_tail=spec.min_tail
    )
    last_perturbation: int | None = None
    recovered: bool | None = None
    recovered_round: int | None = None
    re_stabilization: int | None = None
    if trace.metadata.get("last_perturbation_round") is not None:
        recovery = recovery_round(trace, min_tail=spec.min_tail)
        last_perturbation = recovery.last_perturbation_round
        recovered = recovery.recovered
        recovered_round = recovery.recovery_round
        re_stabilization = recovery.re_stabilization_time
    correct = algorithm.n - len(trace.faulty)
    model = trace.metadata.get("model", "broadcast")
    max_pulls: int | None = None
    mean_pulls: float | None = None
    max_bits: int | None = None
    failure_rate: float | None = None
    if model == "pulling":
        stats = pull_statistics(trace)
        max_pulls = stats["max_pulls"]
        mean_pulls = stats["mean_pulls"]
        max_bits = stats["max_bits"]
        failure_rate = post_agreement_failure_rate(trace)
        # mean_pulls per round is total/correct, so this recovers the total
        # number of pulls issued by correct nodes over the whole run.
        messages_sent = int(
            round(
                sum(
                    record.metadata.get("mean_pulls", 0.0) * correct
                    for record in trace.rounds
                )
            )
        )
    else:
        messages_sent = trace.num_rounds * algorithm.n * correct
    return RunResult(
        run_id=spec.run_id,
        algorithm=spec.algorithm_label(),
        adversary=spec.adversary_label(),
        n=algorithm.n,
        f=algorithm.f,
        c=algorithm.c,
        faulty=tuple(sorted(trace.faulty)),
        sim_seed=spec.sim_seed,
        rounds_simulated=trace.num_rounds,
        stabilized=metrics.stabilized,
        stabilization_round=metrics.stabilization_round,
        within_bound=metrics.within_bound,
        agreement_fraction=metrics.agreement_fraction,
        stopped_early=bool(trace.metadata.get("stopped_early", False)),
        messages_sent=messages_sent,
        error=None,
        model=model,
        max_pulls=max_pulls,
        mean_pulls=mean_pulls,
        max_bits=max_bits,
        post_agreement_failure_rate=failure_rate,
        last_perturbation_round=last_perturbation,
        recovered=recovered,
        recovery_round=recovered_round,
        re_stabilization_time=re_stabilization,
        rng=trace.metadata.get("rng"),
    )


class CampaignStore:
    """Append-only JSONL persistence for campaign results.

    One :class:`RunResult` per line.  Appends are flushed immediately so an
    interrupted campaign loses at most the in-flight run; on resume,
    :meth:`completed_ids` tells the runner which runs to skip.  Malformed
    lines (for example a partial line from a hard kill) are skipped — the
    corresponding runs simply execute again — but never silently:
    :attr:`corrupt_lines` counts them so the runner can warn on resume.
    """

    def __init__(self, path: str | os.PathLike[str]) -> None:
        self._path = Path(path)
        #: Number of unparseable lines encountered by the most recent full
        #: read of the store (0 before any read).
        self.corrupt_lines = 0

    @property
    def path(self) -> Path:
        """Location of the JSONL file."""
        return self._path

    def append(self, result: RunResult) -> None:
        """Persist one result (creates the file and parents on first use)."""
        self._path.parent.mkdir(parents=True, exist_ok=True)
        # A hard kill can leave the file ending in a partial line; appending
        # directly would corrupt the next record too.  Terminate the stray
        # line first so only the partial record is lost (and re-run).
        needs_newline = False
        if self._path.exists() and self._path.stat().st_size > 0:
            with self._path.open("rb") as handle:
                handle.seek(-1, os.SEEK_END)
                needs_newline = handle.read(1) != b"\n"
        with self._path.open("a", encoding="utf-8") as handle:
            if needs_newline:
                handle.write("\n")
            handle.write(result.to_json() + "\n")
            handle.flush()

    def __iter__(self) -> Iterator[RunResult]:
        if not self._path.exists():
            self.corrupt_lines = 0
            return
        corrupt = 0
        with self._path.open("r", encoding="utf-8") as handle:
            try:
                for line in handle:
                    line = line.strip()
                    if not line:
                        continue
                    try:
                        data = json.loads(line)
                        result = RunResult.from_dict(data)
                    except (ValueError, KeyError, TypeError):
                        corrupt += 1
                        continue
                    yield result
            finally:
                # Publish the count even when the consumer stops early, so a
                # partial read never reports a stale total from a prior pass.
                self.corrupt_lines = corrupt

    def load(self) -> list[RunResult]:
        """All parseable results, in file order."""
        return list(self)

    def latest_by_id(self) -> dict[str, RunResult]:
        """The most recent result per run id (later lines supersede earlier)."""
        latest: dict[str, RunResult] = {}
        for result in self:
            latest[result.run_id] = result
        return latest

    def completed_ids(self) -> set[str]:
        """Run ids that finished successfully (errored runs are retried)."""
        return {
            run_id
            for run_id, result in self.latest_by_id().items()
            if result.error is None
        }

    def __len__(self) -> int:
        return sum(1 for _ in self)


def summarize_results(
    results: Iterable[RunResult],
    group_by: Sequence[str] = ("algorithm", "adversary"),
    name: str = "Campaign summary",
) -> "ExperimentResult":
    """Aggregate run results into a stabilisation-statistics table.

    Groups by the given :class:`RunResult` attributes (default: algorithm and
    adversary) and reports, per group, how many runs stabilised and the
    distribution of stabilisation rounds.
    """
    # Imported lazily: experiments.common itself builds on the campaign
    # engine, so a module-level import would be circular.
    from repro.analysis.stats import summarize
    from repro.experiments.common import ExperimentResult

    groups: dict[tuple, list[RunResult]] = {}
    for result in results:
        key = tuple(getattr(result, attribute) for attribute in group_by)
        groups.setdefault(key, []).append(result)

    table = ExperimentResult(name=name)
    for key in sorted(groups, key=str):
        bucket = groups[key]
        failed = [result for result in bucket if result.error is not None]
        ok = [result for result in bucket if result.error is None]
        stabilized = [result for result in ok if result.stabilized]
        rounds = [
            result.stabilization_round
            for result in stabilized
            if result.stabilization_round is not None
        ]
        stats = summarize(rounds) if rounds else None
        within = [r.within_bound for r in ok if r.within_bound is not None]
        row: dict[str, Any] = dict(zip(group_by, key))
        row.update(
            runs=len(bucket),
            failed=len(failed),
            stabilized=len(stabilized),
            mean_round="-" if stats is None else round(stats.mean, 1),
            median_round="-" if stats is None else stats.median,
            p90_round="-" if stats is None else stats.p90,
            max_round="-" if stats is None else stats.maximum,
            within_bound=all(within) if within else True,
            mean_messages=(
                round(sum(r.messages_sent for r in ok) / len(ok), 1) if ok else 0
            ),
        )
        perturbed = [r for r in ok if r.last_perturbation_round is not None]
        if perturbed:
            # Fault-injection groups: how many runs re-stabilised after the
            # last perturbation, and how long re-convergence took.
            recovered = [r for r in perturbed if r.recovered]
            times = [
                r.re_stabilization_time
                for r in recovered
                if r.re_stabilization_time is not None
            ]
            row.update(
                perturbed=len(perturbed),
                recovered=len(recovered),
                mean_recovery=(
                    round(sum(times) / len(times), 1) if times else "-"
                ),
                max_recovery=max(times) if times else "-",
            )
        pulls = [r.max_pulls for r in ok if r.max_pulls is not None]
        if pulls:
            # Pulling-model groups: the Theorem 4 / Corollary 4 quantities.
            bits = [r.max_bits for r in ok if r.max_bits is not None]
            failure_rates = [
                r.post_agreement_failure_rate
                for r in ok
                if r.post_agreement_failure_rate is not None
            ]
            row.update(
                max_pulls=max(pulls),
                max_bits=max(bits) if bits else 0,
                failure_rate=(
                    round(sum(failure_rates) / len(failure_rates), 4)
                    if failure_rates
                    else "-"
                ),
            )
        table.add_row(**row)
    return table
