"""Campaign orchestration: expand, skip completed, execute, persist.

:func:`run_campaign` ties the pieces together: it expands a
:class:`~repro.campaigns.spec.CampaignSpec` (or takes pre-expanded run
specs), consults the :class:`~repro.campaigns.results.CampaignStore` for runs
that already finished, executes only the remainder on the chosen executor,
appends each result to the store the moment it completes, and returns a
:class:`CampaignReport` with the full result set in grid order.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Iterable, Sequence

from repro.campaigns.executor import ParallelExecutor, SerialExecutor
from repro.campaigns.results import CampaignStore, RunResult
from repro.campaigns.spec import CampaignSpec, RunSpec

__all__ = ["CampaignReport", "run_campaign"]

#: Progress callback ``(done, total, result)`` invoked per completed run.
ProgressCallback = Callable[[int, int, RunResult], None]


@dataclass
class CampaignReport:
    """Outcome of one :func:`run_campaign` invocation.

    Attributes
    ----------
    results:
        One result per expanded run, in grid order — both the runs executed
        now and those recovered from the store.
    executed / skipped / failed:
        How many runs were executed in this invocation, skipped because the
        store already held them, and finished with an error.
    elapsed:
        Wall-clock seconds spent executing (zero when everything was skipped).
    fallback_reasons:
        Why groups of runs took the scalar path when a batch-capable
        executor handled the campaign (one ``"<group>: <reason>"`` line per
        group, from :class:`~repro.campaigns.batching.BatchExecutorStats`);
        empty for scalar executors and fully vectorised campaigns.
    """

    results: list[RunResult] = field(default_factory=list)
    executed: int = 0
    skipped: int = 0
    failed: int = 0
    elapsed: float = 0.0
    fallback_reasons: list[str] = field(default_factory=list)

    @property
    def total(self) -> int:
        """Number of runs in the campaign."""
        return len(self.results)


def run_campaign(
    campaign: CampaignSpec | Sequence[RunSpec] | Iterable[RunSpec],
    store: CampaignStore | None = None,
    executor: "SerialExecutor | ParallelExecutor | object | None" = None,
    progress: ProgressCallback | None = None,
) -> CampaignReport:
    """Run a campaign (resuming from ``store`` when one is given).

    Parameters
    ----------
    campaign:
        A declarative campaign or an explicit list of run specs.
    store:
        Optional JSONL store.  Runs whose ids are already present with a
        successful result are skipped; newly completed runs are appended
        immediately, so interrupting and re-invoking continues where the
        previous invocation stopped.  Errored runs are retried.
    executor:
        Defaults to the executor selected by the campaign's ``engine``
        (``"auto"`` vectorises bit-identical run groups through the batch
        engine); explicit run-spec lists default to the in-process
        :class:`SerialExecutor`.
    progress:
        Optional callback ``(done, total, result)`` fired per completed run.
    """
    if isinstance(campaign, CampaignSpec):
        runs = campaign.expand()
        if executor is None:
            from repro.campaigns.executor import default_executor

            executor = default_executor(engine=campaign.engine)
    else:
        runs = list(campaign)
    executor = executor or SerialExecutor()

    recovered: dict[str, RunResult] = {}
    if store is not None:
        run_ids = {run.run_id for run in runs}
        recovered = {
            run_id: result
            for run_id, result in store.latest_by_id().items()
            if run_id in run_ids and result.error is None
        }
    pending = [run for run in runs if run.run_id not in recovered]

    done = 0

    def on_result(result: RunResult) -> None:
        nonlocal done
        done += 1
        if store is not None:
            store.append(result)
        if progress is not None:
            progress(done, len(pending), result)

    started = time.perf_counter()
    executed = executor.run(pending, on_result=on_result) if pending else []
    elapsed = time.perf_counter() - started if pending else 0.0

    by_id = dict(recovered)
    by_id.update({result.run_id: result for result in executed})
    results = [by_id[run.run_id] for run in runs]
    stats = getattr(executor, "stats", None)
    return CampaignReport(
        results=results,
        executed=len(executed),
        skipped=len(recovered),
        failed=sum(1 for result in executed if result.error is not None),
        elapsed=elapsed,
        fallback_reasons=list(getattr(stats, "fallback_reasons", ()) or ()),
    )
