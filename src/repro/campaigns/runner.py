"""Campaign orchestration: expand, skip completed, execute, persist.

:func:`run_campaign` ties the pieces together: it expands a
:class:`~repro.campaigns.spec.CampaignSpec` (or takes pre-expanded run
specs), consults the :class:`~repro.campaigns.results.CampaignStore` for runs
that already finished, executes only the remainder on the chosen executor,
appends each result to the store the moment it completes, and returns a
:class:`CampaignReport` with the full result set in grid order.
"""

from __future__ import annotations

import time
import warnings
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Sequence

from repro.campaigns.executor import ParallelExecutor, SerialExecutor
from repro.campaigns.results import CampaignStore, RunResult
from repro.campaigns.spec import CampaignSpec, RunSpec
from repro.obs.events import CampaignFinished, CampaignStarted, RunsSkippedOnResume
from repro.obs.observer import Observer, active, default_observer

__all__ = ["CampaignReport", "run_campaign"]

#: Progress callback ``(done, total, result)`` invoked per completed run.
ProgressCallback = Callable[[int, int, RunResult], None]


@dataclass
class CampaignReport:
    """Outcome of one :func:`run_campaign` invocation.

    Attributes
    ----------
    results:
        One result per expanded run, in grid order — both the runs executed
        now and those recovered from the store.
    executed / skipped / failed:
        How many runs were executed in this invocation, skipped because the
        store already held them, and finished with an error.
    elapsed:
        Wall-clock seconds spent executing (zero when everything was skipped).
    fallback_reasons:
        Why groups of runs took the scalar path when a batch-capable
        executor handled the campaign (one ``"<group>: <reason>"`` line per
        group, from the unified
        :class:`~repro.campaigns.executor.ExecutorStats`); empty for scalar
        executors and fully vectorised campaigns.
    metrics:
        Snapshot of the observer's metrics registry taken when the campaign
        finished (``None`` when the campaign ran unobserved); excluded from
        equality so reports stay comparable by outcome.
    """

    results: list[RunResult] = field(default_factory=list)
    executed: int = 0
    skipped: int = 0
    failed: int = 0
    elapsed: float = 0.0
    fallback_reasons: list[str] = field(default_factory=list)
    metrics: dict[str, Any] | None = field(default=None, repr=False, compare=False)

    @property
    def total(self) -> int:
        """Number of runs in the campaign."""
        return len(self.results)


def run_campaign(
    campaign: CampaignSpec | Sequence[RunSpec] | Iterable[RunSpec],
    store: CampaignStore | None = None,
    executor: "SerialExecutor | ParallelExecutor | object | None" = None,
    progress: ProgressCallback | None = None,
    observer: Observer | None = None,
) -> CampaignReport:
    """Run a campaign (resuming from ``store`` when one is given).

    Parameters
    ----------
    campaign:
        A declarative campaign or an explicit list of run specs.
    store:
        Optional JSONL store.  Runs whose ids are already present with a
        successful result are skipped; newly completed runs are appended
        immediately, so interrupting and re-invoking continues where the
        previous invocation stopped.  Errored runs are retried.
    executor:
        Defaults to the executor selected by the campaign's ``engine``
        (``"auto"`` vectorises bit-identical run groups through the batch
        engine); explicit run-spec lists default to the in-process
        :class:`SerialExecutor`.
    progress:
        Optional callback ``(done, total, result)`` fired per completed run.
    observer:
        Optional :class:`~repro.obs.observer.Observer` for lifecycle events
        and metrics; defaults to the process-global default observer
        (installed by the CLI's ``--progress``/``--metrics-out``/
        ``--events-out`` flags), so surface layers can observe campaigns
        without threading the handle through every call site.  The observer
        is also attached to the executor (unless the executor already has
        one), which forwards it into the engines.
    """
    if observer is None:
        observer = default_observer()
    if isinstance(campaign, CampaignSpec):
        runs = campaign.expand()
        name = campaign.name
        if executor is None:
            from repro.campaigns.executor import default_executor

            executor = default_executor(engine=campaign.engine)
    else:
        runs = list(campaign)
        name = "runs"
    executor = executor or SerialExecutor()
    if (
        observer is not None
        and getattr(executor, "observer", "unsupported") is None
    ):
        executor.observer = observer

    recovered: dict[str, RunResult] = {}
    corrupt_lines = 0
    if store is not None:
        run_ids = {run.run_id for run in runs}
        recovered = {
            run_id: result
            for run_id, result in store.latest_by_id().items()
            if run_id in run_ids and result.error is None
        }
        corrupt_lines = store.corrupt_lines
        if corrupt_lines:
            warnings.warn(
                f"campaign store {store.path} contained {corrupt_lines} "
                "unparseable line(s); the affected runs will execute again",
                RuntimeWarning,
                stacklevel=2,
            )
    pending = [run for run in runs if run.run_id not in recovered]

    obs = active(observer)
    if obs is not None:
        metrics = obs.metrics
        metrics.counter("campaign.runs_total").inc(len(runs))
        if corrupt_lines:
            metrics.counter("campaign.store_corrupt_lines").inc(corrupt_lines)
        obs.emit(
            CampaignStarted(
                name=name,
                total_runs=len(runs),
                pending=len(pending),
                skipped=len(recovered),
            )
        )
        if recovered:
            # The resume gap fix: without this, a resumed campaign's
            # progress silently restarts from zero even though most of the
            # grid is already done.
            metrics.counter("campaign.runs_skipped_on_resume").inc(len(recovered))
            obs.emit(
                RunsSkippedOnResume(count=len(recovered), total=len(runs))
            )

    done = 0

    def on_result(result: RunResult) -> None:
        nonlocal done
        done += 1
        if store is not None:
            store.append(result)
        if progress is not None:
            progress(done, len(pending), result)

    started = time.perf_counter()
    executed = executor.run(pending, on_result=on_result) if pending else []
    elapsed = time.perf_counter() - started if pending else 0.0

    by_id = dict(recovered)
    by_id.update({result.run_id: result for result in executed})
    results = [by_id[run.run_id] for run in runs]
    stats = getattr(executor, "stats", None)
    failed = sum(1 for result in executed if result.error is not None)
    snapshot: dict[str, Any] | None = None
    if obs is not None:
        metrics = obs.metrics
        metrics.counter("campaign.runs_executed").inc(len(executed))
        metrics.counter("campaign.runs_failed").inc(failed)
        obs.emit(
            CampaignFinished(
                name=name,
                executed=len(executed),
                skipped=len(recovered),
                failed=failed,
                elapsed_seconds=elapsed,
            )
        )
        snapshot = metrics.snapshot()
    return CampaignReport(
        results=results,
        executed=len(executed),
        skipped=len(recovered),
        failed=failed,
        elapsed=elapsed,
        fallback_reasons=list(getattr(stats, "fallback_reasons", ()) or ()),
        metrics=snapshot,
    )
