"""Declarative campaign specifications and their expansion into runs.

A *campaign* is a grid of simulation settings: a communication model
(broadcast or pulling), algorithms (named registry entries with parameters),
adversary strategies, fault counts and repetitions, sharing one simulation
configuration envelope.
:meth:`CampaignSpec.expand` flattens the grid into fully explicit
:class:`RunSpec` objects — each one a pure, self-contained description of a
single simulation (algorithm, adversary, faulty set, simulation seed).

Expansion performs all randomness derivation *eagerly* (fault-set sampling
and per-run seeds come from :func:`repro.util.rng.derive_rng` on the campaign
seed), so executing a ``RunSpec`` is a deterministic function of the spec
alone.  This is what makes the serial and parallel executors bit-identical:
they run the same pure function over the same specs, only in a different
order.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable, Mapping

from repro.core.algorithm import SynchronousCountingAlgorithm
from repro.core.errors import ParameterError, SimulationError
from repro.network.adversary import (
    Adversary,
    NoAdversary,
    build_adversary,
    random_faulty_set,
    spread_faults,
)
from repro.semantics import strategy_names
from repro.util.rng import derive_rng

__all__ = [
    "AlgorithmSpec",
    "RunSpec",
    "CampaignSpec",
    "FAULT_PATTERNS",
    "MODELS",
    "ENGINES",
]

#: Supported fault-placement patterns for campaign grids.
FAULT_PATTERNS = ("random", "spread")

#: Supported communication models for campaign grids.
MODELS = ("broadcast", "pulling")

#: Supported execution engines: ``"auto"`` vectorises the run groups whose
#: batch execution is bit-identical to the scalar engine, ``"batch"`` forces
#: the vectorised path for every kernel-covered group (randomised kernels are
#: statistically equivalent), ``"scalar"`` always uses the per-run engine.
ENGINES = ("auto", "batch", "scalar")


def _as_items(params: Mapping[str, Any] | Iterable[tuple[str, Any]] | None) -> tuple:
    """Normalise a parameter mapping into a sorted, hashable item tuple."""
    if params is None:
        return ()
    if isinstance(params, Mapping):
        items = params.items()
    else:
        items = list(params)
    return tuple(sorted((str(key), value) for key, value in items))


def _validate_perturbation_knobs(
    owner: str, model: str, loss: float, delay: int, fault_schedule: str | None
) -> None:
    """Shared range/model validation for the perturbation fields."""
    if not 0.0 <= loss < 1.0:
        raise ParameterError(f"{owner}: loss must be in [0, 1), got {loss}")
    if delay < 0:
        raise ParameterError(f"{owner}: delay must be non-negative, got {delay}")
    perturbed = loss > 0.0 or delay > 0 or fault_schedule is not None
    if perturbed and model == "pulling":
        raise ParameterError(
            f"{owner}: perturbations (loss/delay/fault schedules) apply to "
            "the broadcast model only"
        )


@dataclass(frozen=True)
class AlgorithmSpec:
    """A named, parameterised algorithm from the registry.

    The registry (:func:`repro.counters.registry.default_registry`) is the
    construction vocabulary, so specs stay plain data — serialisable to JSON
    and picklable across worker processes.
    """

    name: str
    params: tuple[tuple[str, Any], ...] = ()

    @classmethod
    def create(
        cls, name: str, params: Mapping[str, Any] | None = None
    ) -> "AlgorithmSpec":
        """Build a spec from a name and a parameter mapping.

        Parameter values must be hashable: the spec lives inside frozen
        dataclasses that the executors hash and pickle.  An unhashable value
        (e.g. a list) is rejected here, eagerly, instead of blowing up later
        inside the executor with a bare ``TypeError``.
        """
        items = _as_items(params)
        for key, value in items:
            try:
                hash(value)
            except TypeError:
                raise ParameterError(
                    f"algorithm parameter {key!r} has unhashable value "
                    f"{value!r} ({type(value).__name__}); use hashable "
                    "scalars or tuples"
                ) from None
        return cls(name=name, params=items)

    def build(self) -> SynchronousCountingAlgorithm:
        """Construct the algorithm instance."""
        from repro.counters.registry import default_registry

        return default_registry().build(self.name, **dict(self.params))

    def label(self) -> str:
        """Compact human-readable identifier, e.g. ``figure2(c=2,levels=1)``."""
        if not self.params:
            return self.name
        inner = ",".join(f"{key}={value}" for key, value in self.params)
        return f"{self.name}({inner})"

    def to_dict(self) -> dict[str, Any]:
        """JSON-serialisable form."""
        return {"name": self.name, "params": dict(self.params)}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "AlgorithmSpec":
        """Inverse of :meth:`to_dict`."""
        return cls.create(data["name"], data.get("params"))


@dataclass(frozen=True)
class RunSpec:
    """A fully explicit description of one simulation run.

    All randomness is pinned: the faulty set is spelled out and ``sim_seed``
    seeds the simulator, so executing the spec is deterministic.  The
    ``algorithm`` is either a declarative :class:`AlgorithmSpec` (campaigns,
    CLI) or a pre-built algorithm instance (library callers such as
    :func:`repro.experiments.common.run_counter_trials`); likewise the
    ``adversary`` is a strategy name or a pre-built instance.
    """

    run_id: str
    algorithm: AlgorithmSpec | SynchronousCountingAlgorithm | Any
    adversary: str | Adversary | None = None
    adversary_params: tuple[tuple[str, Any], ...] = ()
    faulty: tuple[int, ...] = ()
    sim_seed: int = 0
    max_rounds: int = 1000
    stop_after_agreement: int | None = 20
    min_tail: int = 2
    tags: tuple[tuple[str, Any], ...] = ()
    model: str = "broadcast"
    #: Message-plane perturbations: per-link loss probability and maximum
    #: delivery delay in rounds (broadcast model only; 0/0 = off).
    loss: float = 0.0
    delay: int = 0
    #: Named fault schedule (a :func:`repro.semantics.fault_schedule_names`
    #: preset) with its builder parameters.  A schedule owns the run's
    #: faulty set over time, so scheduled runs keep ``adversary=None``.
    fault_schedule: str | None = None
    fault_schedule_params: tuple[tuple[str, Any], ...] = ()

    def __post_init__(self) -> None:
        if self.model not in MODELS:
            raise ParameterError(
                f"run {self.run_id!r} names unknown model {self.model!r}; "
                f"expected one of {MODELS}"
            )
        _validate_perturbation_knobs(
            self.run_id, self.model, self.loss, self.delay, self.fault_schedule
        )

    @property
    def perturbed(self) -> bool:
        """Whether the run carries any perturbation (loss, delay, schedule)."""
        return self.loss > 0.0 or self.delay > 0 or self.fault_schedule is not None

    def resolve_perturbations(self) -> Any:
        """The run's :class:`repro.faults.schedule.Perturbations`, or ``None``.

        Builds the named fault schedule through its declared semantics
        (parameters validated against the schema), so executing a scheduled
        spec fails loudly on a typo instead of silently running unperturbed.
        """
        if not self.perturbed:
            return None
        from repro.faults.schedule import Perturbations
        from repro.semantics import fault_schedule_semantics

        schedule = None
        if self.fault_schedule is not None:
            schedule = fault_schedule_semantics(self.fault_schedule).build(
                **dict(self.fault_schedule_params)
            )
        return Perturbations(loss=self.loss, delay=self.delay, schedule=schedule)

    def resolve_algorithm(self) -> SynchronousCountingAlgorithm | Any:
        """Return the algorithm instance this run executes.

        For ``model="pulling"`` runs this is a
        :class:`~repro.network.pulling.PullingAlgorithm`.
        """
        if isinstance(self.algorithm, AlgorithmSpec):
            return self.algorithm.build()
        return self.algorithm

    def resolve_adversary(self) -> Adversary:
        """Return the adversary instance this run executes under."""
        if self.adversary is None:
            if self.faulty:
                raise SimulationError(
                    f"run {self.run_id!r} lists faulty nodes {list(self.faulty)} "
                    "but no adversary strategy"
                )
            return NoAdversary()
        if isinstance(self.adversary, Adversary):
            return self.adversary
        return build_adversary(
            self.adversary, self.faulty, **dict(self.adversary_params)
        )

    def algorithm_label(self) -> str:
        """Human-readable algorithm identifier for results and tables."""
        if isinstance(self.algorithm, AlgorithmSpec):
            return self.algorithm.label()
        return self.algorithm.info.name

    def adversary_label(self) -> str:
        """Human-readable adversary identifier for results and tables."""
        if self.adversary is None:
            return "none"
        if isinstance(self.adversary, Adversary):
            return type(self.adversary).__name__
        return self.adversary


@dataclass(frozen=True)
class CampaignSpec:
    """A declarative grid of simulation runs.

    The cartesian product ``algorithms × adversaries × num_faults ×
    runs_per_setting`` expands into :class:`RunSpec` objects with stable,
    human-readable ``run_id`` strings — the keys used by the result store to
    resume interrupted campaigns.
    """

    name: str
    algorithms: tuple[AlgorithmSpec, ...]
    adversaries: tuple[str, ...] = ("random-state",)
    num_faults: tuple[int | None, ...] = (None,)
    runs_per_setting: int = 10
    seed: int = 0
    max_rounds: int = 1000
    stop_after_agreement: int | None = 20
    min_tail: int = 2
    fault_pattern: str = "random"
    metadata: tuple[tuple[str, Any], ...] = ()
    model: str = "broadcast"
    engine: str = "auto"
    loss: float = 0.0
    delay: int = 0
    fault_schedule: str | None = None
    fault_schedule_params: tuple[tuple[str, Any], ...] = ()

    def __post_init__(self) -> None:
        if not self.name:
            raise ParameterError("campaign name must be non-empty")
        _validate_perturbation_knobs(
            f"campaign {self.name!r}",
            self.model,
            self.loss,
            self.delay,
            self.fault_schedule,
        )
        if self.fault_schedule is not None:
            from repro.semantics import fault_schedule_semantics

            # Unknown names and bad builder parameters fail at definition
            # time; per-algorithm feasibility (fault counts vs resilience)
            # is checked against each algorithm during expand().
            fault_schedule_semantics(self.fault_schedule).validate(
                dict(self.fault_schedule_params)
            )
            if tuple(self.adversaries) != ("none",):
                raise ParameterError(
                    f"campaign {self.name!r} pairs fault schedule "
                    f"{self.fault_schedule!r} with adversaries "
                    f"{list(self.adversaries)}; a schedule owns the faulty "
                    "set over time, so scheduled campaigns must list "
                    "adversaries=('none',)"
                )
        if self.model not in MODELS:
            raise ParameterError(
                f"unknown model {self.model!r}; expected one of {MODELS}"
            )
        if self.engine not in ENGINES:
            raise ParameterError(
                f"unknown engine {self.engine!r}; expected one of {ENGINES}"
            )
        if not self.algorithms:
            raise ParameterError("campaign must list at least one algorithm")
        if not self.adversaries:
            raise ParameterError("campaign must list at least one adversary strategy")
        if self.runs_per_setting < 1:
            raise ParameterError(
                f"runs_per_setting must be positive, got {self.runs_per_setting}"
            )
        if self.max_rounds < 1:
            raise ParameterError(f"max_rounds must be positive, got {self.max_rounds}")
        if self.fault_pattern not in FAULT_PATTERNS:
            raise ParameterError(
                f"unknown fault pattern {self.fault_pattern!r}; "
                f"expected one of {FAULT_PATTERNS}"
            )
        for strategy in self.adversaries:
            if strategy not in strategy_names():
                known = ", ".join(strategy_names())
                raise ParameterError(
                    f"unknown adversary strategy {strategy!r}; known: {known}"
                )

    # ------------------------------------------------------------------ #
    # Expansion
    # ------------------------------------------------------------------ #

    def expand(self) -> list[RunSpec]:
        """Flatten the grid into explicit, deterministic run specifications."""
        from repro.network.pulling import PullingAlgorithm

        runs: dict[str, RunSpec] = {}
        for algorithm_spec in self.algorithms:
            algorithm = algorithm_spec.build()
            if self.fault_schedule is not None:
                from repro.semantics import fault_schedule_semantics

                # Eager feasibility check: the schedule's fault counts must
                # fit this algorithm's resilience, or expansion fails with
                # the offending window named instead of every run erroring.
                fault_schedule_semantics(self.fault_schedule).build(
                    **dict(self.fault_schedule_params)
                ).validate(algorithm)
            is_pulling = isinstance(algorithm, PullingAlgorithm)
            if is_pulling != (self.model == "pulling"):
                raise ParameterError(
                    f"campaign {self.name!r} declares model {self.model!r} but "
                    f"{algorithm_spec.label()} is a "
                    f"{'pulling' if is_pulling else 'broadcast'}-model algorithm"
                )
            for strategy in self.adversaries:
                for requested_faults in self.num_faults:
                    faults = (
                        algorithm.f if requested_faults is None else requested_faults
                    )
                    if strategy == "none":
                        faults = 0
                    if not 0 <= faults <= algorithm.f:
                        raise ParameterError(
                            f"campaign {self.name!r} requests {faults} faults for "
                            f"{algorithm_spec.label()} (resilience f={algorithm.f})"
                        )
                    if faults == 0 and strategy != "none":
                        # An active strategy with nothing to control would
                        # silently duplicate the 'none' rows of the grid.
                        raise ParameterError(
                            f"campaign {self.name!r} pairs adversary strategy "
                            f"{strategy!r} with 0 faults for "
                            f"{algorithm_spec.label()}; list strategy 'none' "
                            "for fault-free rows instead"
                        )
                    for repetition in range(self.runs_per_setting):
                        spec = self._make_run(
                            algorithm_spec, algorithm, strategy, faults, repetition
                        )
                        # Grid coordinates that collapse onto the same run id
                        # (e.g. num_faults listing both None and f) describe
                        # the same run; keep the first occurrence.
                        runs.setdefault(spec.run_id, spec)
        return list(runs.values())

    def _make_run(
        self,
        algorithm_spec: AlgorithmSpec,
        algorithm: SynchronousCountingAlgorithm,
        strategy: str,
        faults: int,
        repetition: int,
    ) -> RunSpec:
        """Derive the explicit run for one grid coordinate."""
        rng = derive_rng(
            self.seed, "campaign", algorithm_spec.label(), strategy, faults, repetition
        )
        if self.fault_pattern == "spread":
            faulty = spread_faults(algorithm.n, faults)
        else:
            faulty = random_faulty_set(algorithm.n, faults, rng=rng)
        sim_seed = rng.getrandbits(32)
        run_id = (
            f"{algorithm_spec.label()}/{strategy}/f{faults}/"
            f"{self.fault_pattern}/r{repetition}"
        )
        return RunSpec(
            run_id=run_id,
            algorithm=algorithm_spec,
            adversary=None if strategy == "none" else strategy,
            faulty=tuple(sorted(faulty)),
            sim_seed=sim_seed,
            max_rounds=self.max_rounds,
            stop_after_agreement=self.stop_after_agreement,
            min_tail=self.min_tail,
            tags=(("campaign", self.name), ("repetition", repetition)),
            model=self.model,
            loss=self.loss,
            delay=self.delay,
            fault_schedule=self.fault_schedule,
            fault_schedule_params=self.fault_schedule_params,
        )

    # ------------------------------------------------------------------ #
    # Serialisation
    # ------------------------------------------------------------------ #

    def to_dict(self) -> dict[str, Any]:
        """JSON-serialisable form (the campaign definition file format)."""
        return {
            "name": self.name,
            "algorithms": [spec.to_dict() for spec in self.algorithms],
            "adversaries": list(self.adversaries),
            "num_faults": list(self.num_faults),
            "runs_per_setting": self.runs_per_setting,
            "seed": self.seed,
            "max_rounds": self.max_rounds,
            "stop_after_agreement": self.stop_after_agreement,
            "min_tail": self.min_tail,
            "fault_pattern": self.fault_pattern,
            "metadata": dict(self.metadata),
            "model": self.model,
            "engine": self.engine,
            "loss": self.loss,
            "delay": self.delay,
            "fault_schedule": self.fault_schedule,
            "fault_schedule_params": dict(self.fault_schedule_params),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "CampaignSpec":
        """Inverse of :meth:`to_dict`."""
        return cls(
            name=data["name"],
            algorithms=tuple(
                AlgorithmSpec.from_dict(entry) for entry in data["algorithms"]
            ),
            adversaries=tuple(data.get("adversaries", ("random-state",))),
            num_faults=tuple(data.get("num_faults", (None,))),
            runs_per_setting=int(data.get("runs_per_setting", 10)),
            seed=int(data.get("seed", 0)),
            max_rounds=int(data.get("max_rounds", 1000)),
            stop_after_agreement=data.get("stop_after_agreement", 20),
            min_tail=int(data.get("min_tail", 2)),
            fault_pattern=data.get("fault_pattern", "random"),
            metadata=_as_items(data.get("metadata")),
            model=data.get("model", "broadcast"),
            engine=data.get("engine", "auto"),
            loss=float(data.get("loss", 0.0)),
            delay=int(data.get("delay", 0)),
            fault_schedule=data.get("fault_schedule"),
            fault_schedule_params=_as_items(data.get("fault_schedule_params")),
        )
