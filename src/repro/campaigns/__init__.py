"""Parallel simulation-campaign engine.

The experiments of this reproduction all reduce to the same workload: run
:func:`~repro.network.simulator.run_simulation` many times over a grid of
{algorithm, adversary, fault pattern, seed} settings and aggregate
stabilisation statistics.  This package turns that workload into a first-class
subsystem:

* :mod:`repro.campaigns.spec` — declarative :class:`CampaignSpec` grids that
  expand into explicit, self-contained :class:`RunSpec` objects.  All
  randomness (fault sets, simulator seeds) is derived eagerly with
  :func:`repro.util.rng.derive_rng`, so a run's outcome is a pure function of
  its spec.  Grids carry a ``model`` axis: ``"broadcast"`` (Section 2) or
  ``"pulling"`` (Section 5, sweeping :class:`PullingAlgorithm` registry
  entries and recording ``max_pulls`` / ``max_bits`` per run).
* :mod:`repro.campaigns.executor` — a :class:`SerialExecutor` (the reference)
  and a :class:`ParallelExecutor` that distributes chunks of runs over a
  :mod:`multiprocessing` pool.  Both produce **bit-identical per-run
  results**; parallelism changes throughput, never outcomes.  Failures are
  accounted per run (``RunResult.error``), never raised mid-campaign.
* :mod:`repro.campaigns.results` — the compact :class:`RunResult` reduction
  of an execution trace (stabilisation round, agreement streaks, message
  counts), the append-only JSONL :class:`CampaignStore` with
  resume-by-skipping-completed-runs, and :func:`summarize_results`.
* :mod:`repro.campaigns.runner` — :func:`run_campaign`, the orchestration
  loop: expand, skip completed, execute, persist as results stream in.
* :mod:`repro.campaigns.cli` — the ``python -m repro.campaigns`` command with
  ``define`` / ``run`` / ``resume`` / ``summarize`` subcommands.

Quick start::

    from repro.campaigns import (
        AlgorithmSpec, CampaignSpec, CampaignStore, ParallelExecutor,
        run_campaign, summarize_results,
    )

    spec = CampaignSpec(
        name="figure2-sweep",
        algorithms=(AlgorithmSpec.create("figure2", {"levels": 1, "c": 2}),),
        adversaries=("crash", "phase-king-skew"),
        runs_per_setting=50,
        max_rounds=4000,
        stop_after_agreement=12,
    )
    report = run_campaign(
        spec,
        store=CampaignStore("figure2.jsonl"),
        executor=ParallelExecutor(),
    )
    print(summarize_results(report.results).format_table())

The experiment harness (:mod:`repro.experiments`) runs its trials through
this engine, so ``run_counter_trials`` and the scaling/ablation tables can be
parallelised with an ``executor`` argument or the modules' ``--jobs`` flag.
"""

from repro.campaigns.executor import (
    ExecutorStats,
    ParallelExecutor,
    SerialExecutor,
    default_executor,
    execute_run,
)
from repro.campaigns.results import (
    CampaignStore,
    RunResult,
    reduce_trace,
    summarize_results,
)
from repro.campaigns.runner import CampaignReport, run_campaign
from repro.campaigns.spec import (
    FAULT_PATTERNS,
    MODELS,
    AlgorithmSpec,
    CampaignSpec,
    RunSpec,
)

__all__ = [
    "AlgorithmSpec",
    "CampaignSpec",
    "RunSpec",
    "FAULT_PATTERNS",
    "MODELS",
    "RunResult",
    "CampaignStore",
    "reduce_trace",
    "summarize_results",
    "execute_run",
    "ExecutorStats",
    "SerialExecutor",
    "ParallelExecutor",
    "default_executor",
    "CampaignReport",
    "run_campaign",
]
