"""Serial and multiprocessing executors for campaign runs.

Both executors evaluate the same pure function, :func:`execute_run`, over a
list of :class:`~repro.campaigns.spec.RunSpec` objects.  Because every spec
pins its own faulty set and simulator seed, the per-run results are
bit-identical regardless of executor, process count or completion order —
parallelism changes throughput, never results.

The parallel executor distributes chunks of specs over a process pool
(:class:`concurrent.futures.ProcessPoolExecutor`) and streams results back
as they complete, so the runner can persist and report progress
incrementally.  Failures are *accounted*, not raised: a run that throws is
returned as a :class:`~repro.campaigns.results.RunResult` with its ``error``
field set.  A worker process dying outright (OOM kill, segfault) breaks the
pool; the executor detects :class:`~concurrent.futures.process.BrokenProcessPool`,
retries the unfinished runs once on the serial path, and records the event
as a named fallback — a dead worker costs throughput, never results.
"""

from __future__ import annotations

import copy
import multiprocessing
import os
import time
from concurrent.futures import ProcessPoolExecutor, as_completed
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable

from repro.campaigns.results import RunResult, reduce_trace
from repro.campaigns.spec import AlgorithmSpec, RunSpec
from repro.network.adversary import Adversary
from repro.network.pulling import PullSimulationConfig, run_pull_simulation
from repro.network.simulator import SimulationConfig, run_simulation
from repro.obs.events import FallbackTaken, RunFinished, RunStarted
from repro.obs.observer import Observer, active, default_observer
from repro.util.rng import derive_rng

__all__ = [
    "execute_run",
    "resolve_observer",
    "ExecutorStats",
    "SerialExecutor",
    "ParallelExecutor",
    "default_executor",
]

#: Callback invoked with every completed result (used for persistence and
#: progress display).
ResultCallback = Callable[[RunResult], None]


def execute_run(spec: RunSpec, observer: Observer | None = None) -> RunResult:
    """Execute one run spec and reduce its trace — the executors' work unit.

    Never raises: any exception (bad registry name, simulation error, ...)
    is captured in the returned result's ``error`` field so one broken run
    cannot abort a campaign.

    Purity: caller-provided algorithm/adversary *instances* are deep-copied
    so that runs never share mutable state (a shared instance would make
    results depend on execution order and process placement), and
    non-deterministic algorithms exposing ``reseed`` are reseeded from the
    spec's ``sim_seed`` so their internal randomness is pinned per run.
    ``observer`` is forwarded into the simulation engine (in-process callers
    only — pool workers always run unobserved and report timings back by
    value instead).
    """
    try:
        algorithm = spec.resolve_algorithm()
        if not isinstance(spec.algorithm, AlgorithmSpec):
            algorithm = copy.deepcopy(algorithm)
        reseed = getattr(algorithm, "reseed", None)
        if not algorithm.deterministic and callable(reseed):
            reseed(derive_rng(spec.sim_seed, "algorithm-rng").getrandbits(64))
        adversary = spec.resolve_adversary()
        if isinstance(spec.adversary, Adversary):
            adversary = copy.deepcopy(adversary)
        # Loss/delay knobs and fault schedules (validated against the
        # algorithm and the baseline adversary inside the broadcast model;
        # RunSpec itself rejects perturbed pulling runs).
        perturbations = spec.resolve_perturbations()
        metadata = {"run_id": spec.run_id, **dict(spec.tags)}
        if spec.model == "pulling":
            pull_config = PullSimulationConfig(
                max_rounds=spec.max_rounds,
                stop_after_agreement=spec.stop_after_agreement,
                seed=spec.sim_seed,
                metadata=metadata,
            )
            trace = run_pull_simulation(
                algorithm, adversary=adversary, config=pull_config, observer=observer
            )
        else:
            config = SimulationConfig(
                max_rounds=spec.max_rounds,
                stop_after_agreement=spec.stop_after_agreement,
                seed=spec.sim_seed,
                metadata=metadata,
                perturbations=perturbations,
            )
            trace = run_simulation(
                algorithm, adversary=adversary, config=config, observer=observer
            )
        return reduce_trace(spec, algorithm, trace)
    except Exception as exc:  # noqa: BLE001 - failure accounting by design
        return RunResult(
            run_id=spec.run_id,
            algorithm=spec.algorithm_label(),
            adversary=spec.adversary_label(),
            n=0,
            f=0,
            c=0,
            faulty=tuple(spec.faulty),
            sim_seed=spec.sim_seed,
            rounds_simulated=0,
            stabilized=False,
            stabilization_round=None,
            within_bound=None,
            agreement_fraction=0.0,
            stopped_early=False,
            messages_sent=0,
            error=f"{type(exc).__name__}: {exc}",
            model=spec.model,
        )


def _execute_chunk(
    items: list[tuple[int, RunSpec]]
) -> list[tuple[int, RunResult, float]]:
    """Pool work function: run one chunk, carrying submission indices through.

    Results are reassembled by position, not ``run_id``, so executors behave
    identically even when a caller-supplied spec list repeats an id.  Each
    run's wall time is measured in the worker and serialised back with the
    result — the parent merges it into its metrics at receive time, so no
    registry is ever shared across processes.
    """
    out: list[tuple[int, RunResult, float]] = []
    for index, spec in items:
        started = time.perf_counter()
        result = execute_run(spec)
        out.append((index, result, time.perf_counter() - started))
    return out


@dataclass
class ExecutorStats:
    """Progress, failure and execution-path accounting for one executor run.

    One dataclass serves every executor: the scalar executors only touch
    ``total``/``completed``/``failed``, while the batch executor also
    accounts the batched-vs-scalar path split (``batched`` / ``fallback`` /
    ``fallback_reasons``).  When ``metrics`` is set (an active observer's
    :class:`~repro.obs.metrics.MetricsRegistry`), every recording also bumps
    the corresponding ``executor.*`` counters, so reports and metric
    snapshots can never drift apart.
    """

    total: int = 0
    completed: int = 0
    failed: int = 0
    #: Runs executed through the vectorised batch engine.
    batched: int = 0
    #: Runs that a batched group handed back to the scalar engine (either
    #: no kernel coverage in ``auto`` mode, or a runtime batch failure).
    fallback: int = 0
    #: Why each scalar group fell back, as ``"<group>: <reason>"`` lines —
    #: one entry per group (not per run), in execution order.  This is the
    #: anti-silent-fallback surface: the CLI prints it, and the benchmark
    #: harness asserts it stays empty for kernel-covered campaigns.
    fallback_reasons: list[str] = field(default_factory=list)
    #: Backing metrics registry (``None`` when unobserved); excluded from
    #: equality so stats comparisons stay value-based.
    metrics: Any = field(default=None, repr=False, compare=False)

    def record(self, result: RunResult) -> None:
        """Account one finished run."""
        self.completed += 1
        if result.error is not None:
            self.failed += 1
        if self.metrics is not None:
            self.metrics.counter("executor.runs_completed").inc()
            if result.error is not None:
                self.metrics.counter("executor.runs_failed").inc()

    def record_batched(self, runs: int) -> None:
        """Account ``runs`` runs executed on the vectorised path."""
        self.batched += runs
        if self.metrics is not None:
            self.metrics.counter("executor.runs_batched").inc(runs)

    def record_fallback(self, label: str, runs: int, reason: str) -> None:
        """Account one group (of ``runs`` runs) taking the scalar path."""
        self.fallback += runs
        self.fallback_reasons.append(f"{label}: {reason}")
        if self.metrics is not None:
            self.metrics.counter("executor.fallback_runs").inc(runs)
            self.metrics.counter("executor.fallback_groups").inc()


def resolve_observer(observer: Observer | None) -> Observer | None:
    """An executor's active observer, falling back to the process default.

    Executors are the chokepoint every campaign *and* every experiment
    script runs through, so the default-observer fallback lives here: the
    CLI's ``--progress``/``--metrics-out``/``--events-out`` flags install a
    process default, and code that drives an executor directly (the
    experiment modules call ``executor.run`` without going through
    :func:`~repro.campaigns.runner.run_campaign`) is still observed.  Pass
    :data:`~repro.obs.observer.NULL_OBSERVER` explicitly to suppress
    observation regardless of the installed default — the batch executor
    does this for its inner scalar-leftover executor, which must not emit a
    second ``run_finished`` per run.
    """
    if observer is None:
        observer = default_observer()
    return active(observer)


def _emit_run_finished(
    obs: Observer, result: RunResult, seconds: float | None
) -> None:
    """Record one finished run into an active observer (events + metrics)."""
    if seconds is not None:
        obs.metrics.histogram("run.seconds").observe(seconds)
    obs.metrics.histogram("run.rounds").observe(result.rounds_simulated)
    obs.emit(
        RunFinished(
            run_id=result.run_id,
            error=result.error,
            stabilized=result.stabilized,
            stabilization_round=result.stabilization_round,
            rounds=result.rounds_simulated,
            seconds=seconds,
        )
    )


class SerialExecutor:
    """Run every spec in-process, in order — the reference executor."""

    def __init__(self, observer: Observer | None = None) -> None:
        self.observer = observer
        self.stats = ExecutorStats()

    def run(
        self, specs: Iterable[RunSpec], on_result: ResultCallback | None = None
    ) -> list[RunResult]:
        """Execute all specs and return their results in submission order."""
        spec_list = list(specs)
        obs = resolve_observer(self.observer)
        self.stats = ExecutorStats(
            total=len(spec_list), metrics=obs.metrics if obs is not None else None
        )
        results: list[RunResult] = []
        for spec in spec_list:
            if obs is not None:
                obs.emit(RunStarted(run_id=spec.run_id))
                started = time.perf_counter()
            result = execute_run(spec, observer=obs)
            if obs is not None:
                _emit_run_finished(obs, result, time.perf_counter() - started)
            self.stats.record(result)
            if on_result is not None:
                on_result(result)
            results.append(result)
        return results


class ParallelExecutor:
    """Distribute specs over a process pool in chunks.

    Parameters
    ----------
    processes:
        Worker count; defaults to the machine's CPU count.
    chunksize:
        Specs per task handed to a worker; defaults to roughly four tasks
        per worker, which amortises IPC overhead while keeping the work
        distribution balanced when run durations vary.
    mp_context:
        Optional multiprocessing start-method context (e.g.
        ``multiprocessing.get_context("spawn")``).
    observer:
        Optional :class:`~repro.obs.observer.Observer`.  Workers never see
        it — they measure locally (per-run wall time travels back with each
        result) and the parent records events and metrics at receive time,
        so there is no shared mutable state across processes.

    A worker dying outright (OOM kill, segfault, ``os._exit``) breaks the
    whole pool — :class:`~concurrent.futures.process.BrokenProcessPool` —
    and takes every in-flight chunk's results with it.  The executor treats
    that as a degradation, not a loss: the runs without a result are retried
    once on the serial path in-process, the event is recorded in
    :attr:`ExecutorStats.fallback_reasons` and (when observed) emitted as a
    :class:`~repro.obs.events.FallbackTaken` event.  A run that crashes the
    worker deterministically therefore surfaces as the *serial* retry
    crashing the parent — loudly — rather than hanging or vanishing.
    """

    def __init__(
        self,
        processes: int | None = None,
        chunksize: int | None = None,
        mp_context: multiprocessing.context.BaseContext | None = None,
        observer: Observer | None = None,
    ) -> None:
        self.processes = processes
        self.chunksize = chunksize
        self._mp_context = mp_context
        self.observer = observer
        self.stats = ExecutorStats()

    def _resolve_pool_shape(self, num_specs: int) -> tuple[int, int]:
        """Pick (processes, chunksize) for the given workload size."""
        processes = self.processes or os.cpu_count() or 1
        processes = max(1, min(processes, num_specs))
        if self.chunksize is not None:
            chunksize = max(1, self.chunksize)
        else:
            chunksize = max(1, -(-num_specs // (processes * 4)))
        return processes, chunksize

    def run(
        self, specs: Iterable[RunSpec], on_result: ResultCallback | None = None
    ) -> list[RunResult]:
        """Execute all specs and return their results in submission order.

        Results stream back in completion order internally (so persistence
        and progress are incremental) but the returned list follows the
        submission order of ``specs``, matching :class:`SerialExecutor`.
        """
        spec_list = list(specs)
        obs = resolve_observer(self.observer)
        self.stats = ExecutorStats(
            total=len(spec_list), metrics=obs.metrics if obs is not None else None
        )
        if not spec_list:
            return []
        processes, chunksize = self._resolve_pool_shape(len(spec_list))
        if processes == 1:
            # A one-worker pool would only add IPC overhead.
            serial = SerialExecutor(observer=self.observer)
            results = serial.run(spec_list, on_result=on_result)
            self.stats = serial.stats
            return results

        collected: list[RunResult | None] = [None] * len(spec_list)

        def finish(index: int, result: RunResult, seconds: float) -> None:
            self.stats.record(result)
            if obs is not None:
                # Worker-side measurements are merged here, at the join
                # point — run_started is not emitted for pooled runs
                # because the parent only learns of a run when it is
                # already done.
                _emit_run_finished(obs, result, seconds)
            if on_result is not None:
                on_result(result)
            collected[index] = result

        indexed = list(enumerate(spec_list))
        chunks = [
            indexed[start : start + chunksize]
            for start in range(0, len(indexed), chunksize)
        ]
        pool_broken = False
        with ProcessPoolExecutor(
            max_workers=processes, mp_context=self._mp_context
        ) as pool:
            futures = [pool.submit(_execute_chunk, chunk) for chunk in chunks]
            for future in as_completed(futures):
                try:
                    batch = future.result()
                except BrokenProcessPool:
                    # A dead worker poisons the whole pool: this chunk and
                    # every still-pending one resolve to the same error.
                    # Keep draining — chunks that completed before the death
                    # still carry results — and recover below.
                    pool_broken = True
                    continue
                for index, result, seconds in batch:
                    finish(index, result, seconds)

        if pool_broken:
            missing = [
                index for index, result in enumerate(collected) if result is None
            ]
            reason = (
                "worker process died (BrokenProcessPool); retrying the "
                f"{len(missing)} affected run(s) on the serial executor"
            )
            self.stats.record_fallback("parallel-executor", len(missing), reason)
            if obs is not None:
                obs.emit(
                    FallbackTaken(
                        label="parallel-executor", runs=len(missing), reason=reason
                    )
                )
            for index in missing:
                started = time.perf_counter()
                result = execute_run(spec_list[index], observer=obs)
                finish(index, result, time.perf_counter() - started)
        return [result for result in collected if result is not None]


def default_executor(jobs: int | None = None, engine: str | None = None):
    """Executor factory used by the CLIs and the Scenario facade.

    ``engine`` selects the execution path: ``None`` / ``"scalar"`` keeps the
    per-run engines (serial for ``jobs in (None, 0, 1)``, multiprocessing
    otherwise); ``"auto"`` / ``"batch"`` return the
    :class:`~repro.campaigns.batching.BatchExecutor`, which vectorises
    kernel-covered run groups and delegates the rest to the scalar path
    (over ``jobs`` worker processes when ``jobs > 1``).
    """
    if engine is not None and engine not in ("scalar", "auto", "batch"):
        from repro.campaigns.spec import ENGINES
        from repro.core.errors import ParameterError

        raise ParameterError(
            f"unknown engine {engine!r}; expected one of {ENGINES}"
        )
    if engine in ("auto", "batch"):
        try:
            from repro.campaigns.batching import BatchExecutor
        except ImportError as exc:
            # The batch engine is built on NumPy; without it, "auto" simply
            # keeps the scalar path while an explicit "batch" request fails
            # loudly.
            if engine == "batch":
                from repro.core.errors import ParameterError

                raise ParameterError(
                    "engine='batch' requires numpy; install it or use "
                    "engine='scalar'"
                ) from exc
        else:
            return BatchExecutor(engine=engine, processes=jobs)
    if jobs is not None and jobs > 1:
        return ParallelExecutor(processes=jobs)
    return SerialExecutor()
