"""``python -m repro.campaigns`` — the campaign engine CLI."""

from __future__ import annotations

import sys

from repro.campaigns.cli import main

if __name__ == "__main__":
    sys.exit(main())
