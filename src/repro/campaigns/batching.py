"""Transparent batched execution of campaign runs.

:class:`BatchExecutor` is the engine-aware executor behind the
``engine="auto" | "batch"`` knob of :class:`~repro.campaigns.spec.CampaignSpec`
and the :class:`~repro.scenarios.scenario.Scenario` facade.  It partitions the
expanded :class:`~repro.campaigns.spec.RunSpec` list into *groups* of trials
that share one configuration — same declarative algorithm, same adversary
strategy and parameters, same fault count and simulation envelope, differing
only in seed and faulty set — and runs each kernel-covered group through the
vectorised batch engine (:func:`repro.network.batch.run_batch_trials`) instead
of one scalar simulation per run.  Everything else (pre-built algorithm
instances, strategies without a kernel, algorithms whose parameters overflow
the kernels' int64 arithmetic) falls back to the scalar
:func:`~repro.campaigns.executor.execute_run`, so results exist for every
spec regardless of coverage.

Engine semantics:

* ``"auto"`` — batch only the groups whose execution is *provably
  bit-identical* to the scalar engine (deterministic algorithm kernel and
  deterministic adversary kernel).  Randomised configurations keep the
  scalar path, so campaign results never silently change distribution-only.
* ``"batch"`` — batch every kernel-covered group, including randomised ones
  (statistically equivalent, with an ``rng`` note in the trace metadata);
  raise :class:`~repro.core.errors.ParameterError` for groups with no kernel
  coverage instead of silently falling back.

The executor's stats (the unified
:class:`~repro.campaigns.executor.ExecutorStats`) report how many runs took
which path (``batched`` / ``fallback``), which the benchmark harness and the
CI smoke job use to detect silent fallbacks; with an observer attached the
same information flows out as :class:`~repro.obs.events.BatchGroupScheduled`
/ :class:`~repro.obs.events.FallbackTaken` events and ``executor.*``
counters.
"""

from __future__ import annotations

from typing import Iterable

from repro.campaigns.executor import (
    ExecutorStats,
    ParallelExecutor,
    ResultCallback,
    _emit_run_finished,
    execute_run,
    resolve_observer,
)
from repro.campaigns.results import RunResult
from repro.campaigns.spec import AlgorithmSpec, RunSpec
from repro.core.errors import ParameterError
from repro.network.batch import (
    BatchRunSummary,
    BatchTrial,
    adversary_kernel_available,
    build_batch_kernel,
    run_batch_summaries,
)
from repro.obs.events import BatchGroupScheduled, FallbackTaken
from repro.obs.observer import NULL_OBSERVER, Observer

__all__ = ["BatchExecutorStats", "BatchExecutor", "group_runs", "reduce_summary"]


def _group_label(spec: RunSpec, algorithm=None) -> str:
    """Human-readable identity of one batchable group.

    Names everything a user needs to recognise the offending grid
    coordinate — algorithm (with parameters), adversary strategy, and the
    ``n``/``f`` envelope — so fallback reasons and forced-batch errors never
    point at a bare strategy name.
    """
    label = f"{spec.algorithm_label()} x {spec.adversary_label()}"
    if algorithm is not None:
        label += f" (n={algorithm.n}, f={len(spec.faulty)})"
    else:
        label += f" (f={len(spec.faulty)})"
    return label

#: Engines the executor understands (``"scalar"`` is handled by
#: :func:`repro.campaigns.executor.default_executor` and never reaches here).
_ENGINES = ("auto", "batch")


#: Backwards-compatible alias: the batched/fallback accounting now lives on
#: the unified :class:`~repro.campaigns.executor.ExecutorStats` dataclass.
BatchExecutorStats = ExecutorStats


def group_runs(
    specs: Iterable[RunSpec],
) -> tuple[dict[tuple, list[int]], list[int]]:
    """Partition specs into batchable groups plus scalar-only leftovers.

    A group collects the indices of specs that share one configuration —
    the prerequisite for folding their trials into one batch.  Specs with
    pre-built algorithm or adversary *instances* are never grouped (their
    mutable state cannot be assumed shareable across trials).
    """
    groups: dict[tuple, list[int]] = {}
    scalar: list[int] = []
    for index, spec in enumerate(specs):
        if not isinstance(spec.algorithm, AlgorithmSpec) or not (
            spec.adversary is None or isinstance(spec.adversary, str)
        ):
            scalar.append(index)
            continue
        key = (
            spec.model,
            spec.algorithm,
            spec.adversary,
            spec.adversary_params,
            len(spec.faulty),
            spec.max_rounds,
            spec.stop_after_agreement,
            spec.loss,
            spec.delay,
            spec.fault_schedule,
            spec.fault_schedule_params,
        )
        groups.setdefault(key, []).append(index)
    return groups, scalar


class BatchExecutor:
    """Executor that routes kernel-covered run groups through the batch engine.

    Parameters
    ----------
    engine:
        ``"auto"`` (batch only bit-identical deterministic groups) or
        ``"batch"`` (batch everything covered, error on uncovered groups).
    processes:
        Worker processes for the scalar leftovers (``> 1`` uses the
        multiprocessing executor for them); batched groups always run
        in-process — they are the fast path already.
    batch_size:
        Trials vectorised together per NumPy batch.
    observer:
        Optional :class:`~repro.obs.observer.Observer`.  Batched groups emit
        :class:`~repro.obs.events.BatchGroupScheduled` /
        :class:`~repro.obs.events.FallbackTaken` events and forward the
        observer into the batch engine's round loop; every run still gets
        exactly one :class:`~repro.obs.events.RunFinished` event (emitted
        here, not by the scalar leftovers' inner executor).
    """

    def __init__(
        self,
        engine: str = "auto",
        processes: int | None = None,
        batch_size: int = 256,
        observer: Observer | None = None,
    ) -> None:
        if engine not in _ENGINES:
            raise ParameterError(
                f"unknown batch engine {engine!r}; expected one of {_ENGINES}"
            )
        self.engine = engine
        self.processes = processes
        self.batch_size = batch_size
        self.observer = observer
        self.stats = BatchExecutorStats()

    # ------------------------------------------------------------------ #
    # Execution
    # ------------------------------------------------------------------ #

    def run(
        self, specs: Iterable[RunSpec], on_result: ResultCallback | None = None
    ) -> list[RunResult]:
        """Execute all specs and return their results in submission order."""
        spec_list = list(specs)
        obs = resolve_observer(self.observer)
        self.stats = BatchExecutorStats(
            total=len(spec_list), metrics=obs.metrics if obs is not None else None
        )
        results: list[RunResult | None] = [None] * len(spec_list)

        def finish(index: int, result: RunResult) -> None:
            results[index] = result
            self.stats.record(result)
            if obs is not None:
                # One run_finished per run, whichever path executed it; the
                # group's cost is shared, so no per-run seconds here.
                _emit_run_finished(obs, result, None)
            if on_result is not None:
                on_result(result)

        def fall_back(label: str, runs: int, reason: str) -> None:
            self.stats.record_fallback(label, runs, reason)
            if obs is not None:
                obs.emit(FallbackTaken(label=label, runs=runs, reason=reason))

        groups, scalar_indices = group_runs(spec_list)
        if scalar_indices:
            fall_back(
                f"{len(scalar_indices)} run(s) with pre-built instances",
                len(scalar_indices),
                "pre-built algorithm or adversary instances are never grouped",
            )
        for key, indices in groups.items():
            group = [spec_list[index] for index in indices]
            batched, label, reason = self._try_batch(group)
            if batched is None:
                assert reason is not None
                fall_back(label, len(indices), reason)
                scalar_indices.extend(indices)
                continue
            for index, result in zip(indices, batched):
                finish(index, result)
            self.stats.record_batched(len(indices))

        if scalar_indices:
            scalar_indices.sort()
            leftovers = [spec_list[index] for index in scalar_indices]
            # The inner executor runs unobserved: finish() below is the one
            # place run_finished events and completion counters are emitted,
            # so routing leftovers through another observed executor would
            # double-account them.  NULL_OBSERVER (not None) pins that down
            # even when a process-default observer is installed.  The serial
            # path still forwards the observer into the engine itself —
            # engine-level metrics are distinct from the executor's run
            # accounting.
            if self.processes is not None and self.processes > 1 and len(leftovers) > 1:
                scalar_results = ParallelExecutor(
                    processes=self.processes, observer=NULL_OBSERVER
                ).run(leftovers)
            else:
                scalar_results = [
                    execute_run(spec, observer=obs) for spec in leftovers
                ]
            for index, result in zip(scalar_indices, scalar_results):
                finish(index, result)

        return [result for result in results if result is not None]

    # ------------------------------------------------------------------ #
    # Group planning
    # ------------------------------------------------------------------ #

    def _try_batch(
        self, group: list[RunSpec]
    ) -> tuple[list[RunResult] | None, str, str | None]:
        """Run one group through the batch engine.

        Returns ``(results, label, None)`` on the vectorised path, or
        ``(None, label, reason)`` when the group must take the scalar path —
        ``label`` names the group as completely as possible (including ``n``
        whenever the algorithm built) and the reason is recorded in
        :attr:`BatchExecutorStats.fallback_reasons`.  In ``engine="batch"``
        mode, missing kernel coverage raises a
        :class:`~repro.core.errors.ParameterError` naming the full offending
        group (algorithm, strategy, ``n``/``f``) instead of silently falling
        back.
        """
        spec = group[0]
        reason: str | None = None
        algorithm = None
        kernel = None
        if spec.fault_schedule is not None:
            # The schedule runtime (churn, per-window cohorts, recovery
            # markers) exists only in the scalar round loop; there is no
            # batch schedule path, so the fallback is always named.
            reason = (
                f"fault schedule {spec.fault_schedule!r} runs on the scalar "
                "engine (no batch schedule path)"
            )
            label = _group_label(spec)
            if self.engine == "batch":
                raise ParameterError(
                    f"engine='batch' requested but group {label} cannot "
                    f"batch: {reason}; use engine='auto' to fall back to the "
                    "scalar engine"
                )
            return None, label, reason
        try:
            algorithm = spec.algorithm.build()
        except Exception as exc:  # noqa: BLE001 - surfaced per-run by the fallback
            reason = f"algorithm {spec.algorithm_label()} failed to build: {exc}"
        if reason is None:
            kernel = build_batch_kernel(algorithm)
            if kernel is None:
                reason = (
                    f"algorithm {spec.algorithm_label()} advertises no "
                    "vectorised kernel"
                )
            elif not adversary_kernel_available(spec.adversary):
                reason = (
                    f"adversary strategy {spec.adversary!r} has no "
                    "vectorised kernel"
                )
            elif kernel.model != spec.model:
                reason = (
                    f"kernel model {kernel.model!r} does not match the run "
                    f"model {spec.model!r}"
                )
        label = _group_label(spec, algorithm)
        if reason is not None:
            if self.engine == "batch":
                raise ParameterError(
                    f"engine='batch' requested but group {label} cannot "
                    f"batch: {reason}; use engine='auto' to fall back to the "
                    "scalar engine"
                )
            return None, label, reason
        assert kernel is not None
        if self.engine == "auto" and not self._bit_identical(kernel, spec):
            # auto never changes randomised result streams behind the
            # caller's back; engine='batch' opts into statistical
            # equivalence explicitly.
            return None, label, (
                "randomised configuration is only statistically equivalent; "
                "auto batches provably bit-identical groups (force "
                "engine='batch' to opt in)"
            )
        obs = resolve_observer(self.observer)
        if obs is not None:
            obs.emit(
                BatchGroupScheduled(
                    label=label,
                    runs=len(group),
                    engine=self.engine,
                    deterministic=self._bit_identical(kernel, spec),
                )
            )
        if self.engine == "batch":
            # Forced mode promises no silent fallback: a runtime failure of
            # the batch engine propagates instead of quietly rerunning the
            # group on the scalar path.
            return self._run_group(algorithm, kernel, group), label, None
        try:
            return self._run_group(algorithm, kernel, group), label, None
        except Exception as exc:  # noqa: BLE001 - the scalar rerun surfaces real
            # per-run errors through execute_run's failure accounting.
            return None, label, f"batch execution failed ({exc}); re-running scalar"

    @staticmethod
    def _bit_identical(kernel, spec: RunSpec) -> bool:
        """Whether the batch path is provably bit-identical for this group.

        Determinism of an adversary kernel can depend on the algorithm's
        state encoding (the adaptive-split fabrication path), so the check
        asks the kernel class about *this* algorithm kernel instead of
        reading a per-strategy flag.
        """
        from repro.network.batch import ADVERSARY_BATCH_KERNELS

        if spec.loss > 0.0 or spec.delay > 0:
            # Message-plane perturbations draw per-link randomness every
            # round; the batch and scalar streams are only statistically
            # equivalent, never bit-identical.
            return False
        if not kernel.deterministic:
            return False
        if spec.adversary is None or not spec.faulty:
            return True
        adversary_kernel = ADVERSARY_BATCH_KERNELS.get(spec.adversary)
        return adversary_kernel is not None and adversary_kernel.is_deterministic_for(
            kernel
        )

    def _run_group(self, algorithm, kernel, group: list[RunSpec]) -> list[RunResult]:
        """Vectorised execution of one homogeneous group."""
        spec = group[0]
        trials = [
            BatchTrial(
                sim_seed=member.sim_seed,
                faulty=member.faulty,
                metadata=(("run_id", member.run_id), *member.tags),
            )
            for member in group
        ]
        summaries = run_batch_summaries(
            algorithm,
            kernel,
            trials,
            adversary_strategy=spec.adversary,
            adversary_params=dict(spec.adversary_params),
            max_rounds=spec.max_rounds,
            stop_after_agreement=spec.stop_after_agreement,
            batch_size=self.batch_size,
            observer=resolve_observer(self.observer),
            loss=spec.loss,
            delay=spec.delay,
        )
        return [
            reduce_summary(member, algorithm, summary)
            for member, summary in zip(group, summaries)
        ]


def reduce_summary(
    spec: RunSpec, algorithm, summary: BatchRunSummary
) -> RunResult:
    """Reduce one batch summary to its campaign result.

    Computes exactly what :func:`repro.campaigns.results.reduce_trace`
    computes from a full trace — the empirical stabilisation suffix of
    :func:`repro.network.stabilization.stabilization_round`, the agreement
    fraction, the message counts and (for pulling trials) the Theorem 4
    statistics — from the per-round agreed values alone.  Batch-vs-scalar
    result identity for deterministic configurations is asserted in
    ``tests/campaigns/test_batching.py``.
    """
    from repro.analysis.metrics import post_agreement_failure_rate_from_values
    from repro.network.stabilization import stabilization_from_values

    agreed = summary.agreed
    total = summary.rounds

    # One shared implementation with the scalar path: the batch engine's
    # agreed-value arrays (disagreement = -1) feed the same stabilisation
    # suffix walk the trace-based reduction uses.
    result = stabilization_from_values(agreed, algorithm.c, min_tail=spec.min_tail)

    bound = algorithm.stabilization_bound()
    within: bool | None = None
    if bound is not None and result.stabilized and result.round is not None:
        within = result.round <= bound

    agreements = sum(1 for value in agreed if value >= 0)
    agreement_fraction = agreements / total if total else 0.0

    correct = algorithm.n - len(summary.faulty)
    max_pulls: int | None = None
    mean_pulls: float | None = None
    max_bits: int | None = None
    failure_rate: float | None = None
    if spec.model == "pulling":
        pulls = summary.pulls_per_round or 0
        max_pulls = pulls
        mean_pulls = float(pulls)
        max_bits = pulls * summary.message_bits
        messages_sent = total * pulls * correct
        failure_rate = post_agreement_failure_rate_from_values(agreed)
    else:
        messages_sent = total * algorithm.n * correct

    return RunResult(
        run_id=spec.run_id,
        algorithm=spec.algorithm_label(),
        adversary=spec.adversary_label(),
        n=algorithm.n,
        f=algorithm.f,
        c=algorithm.c,
        faulty=summary.faulty,
        sim_seed=spec.sim_seed,
        rounds_simulated=total,
        stabilized=result.stabilized,
        stabilization_round=result.round,
        within_bound=within,
        agreement_fraction=agreement_fraction,
        stopped_early=summary.stopped_early,
        messages_sent=messages_sent,
        error=None,
        model=spec.model,
        max_pulls=max_pulls,
        mean_pulls=mean_pulls,
        max_bits=max_bits,
        post_agreement_failure_rate=failure_rate,
        rng=summary.rng_note,
    )
