"""Scalar execution of fault schedules and message-plane perturbations.

:class:`PerturbationRuntime` is the piece the broadcast model plugs into its
round loop when a run carries :class:`~repro.faults.schedule.Perturbations`:
it advances the schedule's window state machine (corrupting and recovering
nodes at window boundaries) and routes messages through the loss/delay
plane.  All randomness — drawn faulty sets, arbitrary rejoin states, link
staleness — comes from the run's dedicated ``"faults"`` stream, derived via
:mod:`repro.util.rng`, so the adversary and initial-state streams of
unperturbed runs are untouched and fixed-seed traces stay bit-identical.

The loss/delay model (mirrored by the batch engine's masked array ops): a
correct sender's link to another node delivers the sender's start-of-round
state from ``delta`` rounds ago, where ``delta`` is ``Uniform{0..delay}``
plus one with probability ``loss`` — a synchronous-model rendering of lossy,
laggy links that keeps every round well-defined.  Self-links and Byzantine
links are never perturbed (a node knows its own state; forged messages are
adversary-chosen anyway).
"""

from __future__ import annotations

import random
from collections import deque
from typing import Any, Mapping, Sequence

from repro.faults.schedule import FaultSchedule, FaultWindow, Perturbations

__all__ = ["PerturbationRuntime", "run_perturbed_round"]


def run_perturbed_round(
    algorithm: Any,
    states: Mapping[int, Any],
    adversary: Any,
    round_index: int,
    rng: random.Random,
    faults_rng: random.Random,
    loss: float,
    delay: int,
    history: Sequence[Mapping[int, Any]],
) -> dict[int, Any]:
    """One synchronous round with per-link loss and delay applied.

    ``history`` holds start-of-round state snapshots, freshest first —
    ``history[0]`` **must** be this round's ``states`` (the caller pushes it
    before calling).  Staleness is clamped to the oldest available snapshot,
    and a sender missing from an old snapshot (it was faulty back then)
    falls back to its current state.  Receivers are visited in sorted order
    and senders in identifier order, so the ``faults_rng`` draw sequence is
    deterministic for a fixed seed.
    """
    faulty = adversary.faulty
    adversary.on_round_start(round_index, states, algorithm, rng)
    coerce = algorithm.coerce_message
    forge = adversary.forge
    oldest = len(history) - 1
    new_states: dict[int, Any] = {}
    for receiver in sorted(states):
        messages: list[Any] = []
        for sender in range(algorithm.n):
            if sender in faulty:
                messages.append(
                    coerce(forge(round_index, sender, receiver, states, algorithm, rng))
                )
                continue
            if sender == receiver:
                messages.append(states[sender])
                continue
            staleness = faults_rng.randrange(delay + 1) if delay > 0 else 0
            if loss > 0.0 and faults_rng.random() < loss:
                staleness += 1
            snapshot = history[min(staleness, oldest)]
            messages.append(snapshot.get(sender, states[sender]))
        new_states[receiver] = algorithm.transition(receiver, messages)
    return new_states


class PerturbationRuntime:
    """Per-run state machine threading perturbations through the round loop.

    Owns the schedule's current window, the cohort faulty-set cache, and the
    bounded snapshot history of the delay plane.  :meth:`step` replaces the
    broadcast model's plain ``run_round`` call: it first applies any window
    transition due at this round (returning markers the engine turns into
    :class:`~repro.obs.events.FaultInjected` /
    :class:`~repro.obs.events.NodeRecovered` events and the
    ``last_perturbation_round`` trace stamp), then executes the round
    through the perturbed or plain message plane.
    """

    def __init__(
        self,
        algorithm: Any,
        adversary: Any,
        perturbations: Perturbations,
        faults_rng: random.Random,
    ) -> None:
        self.algorithm = algorithm
        self.perturbations = perturbations
        self.rng = faults_rng
        self.schedule: FaultSchedule | None = perturbations.schedule
        self._baseline = adversary
        self._adversary = adversary
        self._window: FaultWindow | None = None
        self._cohorts: dict[int, frozenset[int]] = {}
        self._history: deque[Mapping[int, Any]] | None = (
            deque(maxlen=perturbations.delay + 2)
            if perturbations.message_plane_active
            else None
        )

    @property
    def adversary(self) -> Any:
        """The adversary controlling the current round's faulty set."""
        return self._adversary

    def step(
        self,
        states: Mapping[int, Any],
        round_index: int,
        adversary_rng: random.Random,
    ) -> tuple[dict[int, Any], dict[str, Any] | None]:
        """Execute one round; returns new states plus round markers (or None)."""
        from repro.network.simulator import run_round

        markers: dict[str, Any] = {}
        if self.schedule is not None:
            states = self._advance_schedule(round_index, states, markers)
        if self._history is not None:
            self._history.appendleft(dict(states))
            new_states = run_perturbed_round(
                self.algorithm,
                states,
                self._adversary,
                round_index,
                adversary_rng,
                self.rng,
                self.perturbations.loss,
                self.perturbations.delay,
                self._history,
            )
        else:
            new_states = run_round(
                self.algorithm, states, self._adversary, round_index, adversary_rng
            )
        return new_states, (markers or None)

    # -- schedule state machine ----------------------------------------- #

    def _advance_schedule(
        self,
        round_index: int,
        states: Mapping[int, Any],
        markers: dict[str, Any],
    ) -> Mapping[int, Any]:
        """Apply the window transition due at ``round_index``, if any."""
        assert self.schedule is not None
        window = self.schedule.window_at(round_index)
        if window is self._window:
            return states
        old_faulty = frozenset(self._adversary.faulty)
        new_faulty = (
            self._faulty_for(window) if window is not None else frozenset()
        )
        corrupted = sorted(new_faulty - old_faulty)
        recovered = sorted(old_faulty - new_faulty)
        if corrupted or recovered:
            mutated = dict(states)
            for node in corrupted:
                mutated.pop(node, None)
            for node in recovered:
                # Arbitrary rejoin states: the self-stabilisation workload —
                # recovery must work from any configuration, so rejoining
                # nodes restart from uniformly random states.
                mutated[node] = self.algorithm.random_state(self.rng)
            states = mutated
        if window is None:
            self._adversary = self._baseline
        else:
            from repro.network.adversary import build_adversary

            self._adversary = build_adversary(
                window.strategy, sorted(new_faulty), **dict(window.params)
            )
        self._window = window
        if corrupted:
            assert window is not None
            markers["fault_injected"] = {
                "strategy": window.strategy,
                "nodes": corrupted,
            }
        if recovered:
            markers["nodes_recovered"] = {"nodes": recovered}
        return states

    def _faulty_for(self, window: FaultWindow) -> frozenset[int]:
        """The faulty set of a window (cohorts share one drawn set)."""
        if window.cohort is not None and window.cohort in self._cohorts:
            return self._cohorts[window.cohort]
        count = (
            window.num_faults if window.num_faults is not None else self.algorithm.f
        )
        drawn = frozenset(self.rng.sample(range(self.algorithm.n), count))
        if window.cohort is not None:
            self._cohorts[window.cohort] = drawn
        return drawn
