"""Declarative fault schedules and the per-run perturbation surface.

A :class:`FaultSchedule` is a seeded, per-round-window plan composing the
registered adversary strategies over *time-varying* faulty sets.  Windows
are declarative data — which rounds, which strategy, how many nodes — and
the actual node identities are drawn from the run's dedicated ``"faults"``
RNG stream when a window opens, so equal seeds replay equal schedules.

Windows sharing a ``cohort`` identifier share one drawn faulty set; that is
how churn is expressed: a crash window followed by an adversarial window
over the *same* nodes, after which the nodes rejoin as correct with
arbitrary (uniformly random) states — precisely the configuration jolt the
paper's self-stabilisation guarantee covers.

:class:`Perturbations` bundles a schedule with the message-plane knobs
(per-link loss probability, bounded per-link delay) into the one object the
engines thread through a run.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterator, Mapping

from repro.core.errors import ParameterError

__all__ = [
    "FaultWindow",
    "FaultSchedule",
    "Perturbations",
    "build_churn_schedule",
    "build_rolling_schedule",
    "build_late_adversary_schedule",
]


def _freeze_params(params: Mapping[str, Any] | None) -> tuple[tuple[str, Any], ...]:
    """Normalise strategy parameters to a sorted, hashable tuple of pairs."""
    if not params:
        return ()
    return tuple(sorted(dict(params).items()))


@dataclass(frozen=True)
class FaultWindow:
    """One contiguous span of rounds controlled by one adversary strategy.

    Attributes
    ----------
    start:
        First round (inclusive) of the window; round 0 means the nodes are
        faulty from the very beginning.
    duration:
        Number of rounds the window lasts; ``None`` keeps it open until the
        end of the run (the nodes never recover).
    strategy:
        Name of the adversary strategy controlling the window's nodes (any
        active strategy of the catalogue; never ``"none"``).
    num_faults:
        How many nodes the window corrupts; ``None`` defaults to the
        algorithm's resilience ``f`` at runtime.
    params:
        Strategy parameters, stored as sorted ``(name, value)`` pairs so
        windows stay hashable (campaign group keys).
    cohort:
        Windows with equal cohort identifiers share one drawn faulty set;
        ``None`` draws a fresh set when the window opens.
    """

    start: int
    duration: int | None
    strategy: str
    num_faults: int | None = None
    params: tuple[tuple[str, Any], ...] = ()
    cohort: int | None = None

    def __post_init__(self) -> None:
        if self.start < 0:
            raise ParameterError(
                f"fault window start must be non-negative, got {self.start}"
            )
        if self.duration is not None and self.duration < 1:
            raise ParameterError(
                f"fault window duration must be positive or None, got {self.duration}"
            )
        if self.strategy == "none":
            raise ParameterError(
                "fault windows compose active adversary strategies; "
                "rounds outside every window are already fault-free"
            )
        if self.num_faults is not None and self.num_faults < 1:
            raise ParameterError(
                f"fault window num_faults must be positive or None, got {self.num_faults}"
            )
        object.__setattr__(self, "params", _freeze_params(dict(self.params)))

    @property
    def end(self) -> int | None:
        """End round (exclusive), or ``None`` for an open window."""
        if self.duration is None:
            return None
        return self.start + self.duration

    def covers(self, round_index: int) -> bool:
        """Whether ``round_index`` falls inside this window."""
        if round_index < self.start:
            return False
        return self.end is None or round_index < self.end

    def to_dict(self) -> dict[str, Any]:
        """JSON-serialisable form (inverse of :meth:`from_dict`)."""
        return {
            "start": self.start,
            "duration": self.duration,
            "strategy": self.strategy,
            "num_faults": self.num_faults,
            "params": dict(self.params),
            "cohort": self.cohort,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "FaultWindow":
        """Rebuild a window from its :meth:`to_dict` form."""
        return cls(
            start=int(data["start"]),
            duration=None if data.get("duration") is None else int(data["duration"]),
            strategy=str(data["strategy"]),
            num_faults=(
                None if data.get("num_faults") is None else int(data["num_faults"])
            ),
            params=_freeze_params(data.get("params")),
            cohort=None if data.get("cohort") is None else int(data["cohort"]),
        )


@dataclass(frozen=True)
class FaultSchedule:
    """A seeded plan of fault windows over the lifetime of one run.

    Windows must be disjoint (the model corrupts at most one set of nodes at
    a time, keeping the cardinality bound ``|F| <= f`` checkable per round)
    and at most one window may be open-ended.  The schedule is pure data —
    node identities and rejoin states are drawn at runtime from the run's
    ``"faults"`` stream by :class:`repro.faults.runtime.PerturbationRuntime`.
    """

    name: str
    windows: tuple[FaultWindow, ...]

    def __post_init__(self) -> None:
        if not self.name:
            raise ParameterError("fault schedules must be named")
        windows = tuple(self.windows)
        if not windows:
            raise ParameterError(f"fault schedule {self.name!r} has no windows")
        object.__setattr__(self, "windows", windows)
        ordered = sorted(windows, key=lambda window: window.start)
        for earlier, later in zip(ordered, ordered[1:]):
            if earlier.end is None or later.start < earlier.end:
                raise ParameterError(
                    f"fault schedule {self.name!r}: windows starting at rounds "
                    f"{earlier.start} and {later.start} overlap"
                )

    def __iter__(self) -> Iterator[FaultWindow]:
        return iter(self.windows)

    def window_at(self, round_index: int) -> FaultWindow | None:
        """The window covering ``round_index``, if any."""
        for window in self.windows:
            if window.covers(round_index):
                return window
        return None

    def max_num_faults(self, default: int) -> int:
        """The largest fault count any window requests (``None`` -> default)."""
        return max(
            default if window.num_faults is None else window.num_faults
            for window in self.windows
        )

    def last_change_round(self) -> int | None:
        """The last round at which the schedule changes the faulty set.

        ``None`` when the final window never closes — such runs have no
        recovery phase to measure.
        """
        last: int | None = 0
        for window in self.windows:
            if window.end is None:
                return None
            last = max(last or 0, window.end, window.start)
        return last

    def validate(self, algorithm: Any = None) -> None:
        """Check strategies against the catalogue and, if given, the algorithm.

        Raises :class:`ParameterError` for unknown strategies, parameters
        outside the strategy's schema, or fault counts exceeding the
        algorithm's resilience ``f`` / node count ``n``.
        """
        from repro.semantics import active_strategy_names, adversary_semantics

        known = active_strategy_names()
        for window in self.windows:
            if window.strategy not in known:
                raise ParameterError(
                    f"fault schedule {self.name!r}: unknown strategy "
                    f"{window.strategy!r}; known strategies: {', '.join(known)}"
                )
            adversary_semantics(window.strategy).validate(dict(window.params))
            if algorithm is None:
                continue
            count = window.num_faults if window.num_faults is not None else algorithm.f
            if count > algorithm.f:
                raise ParameterError(
                    f"fault schedule {self.name!r}: window at round "
                    f"{window.start} corrupts {count} nodes but the algorithm "
                    f"only tolerates f={algorithm.f}"
                )
            if count > algorithm.n:
                raise ParameterError(
                    f"fault schedule {self.name!r}: window at round "
                    f"{window.start} corrupts {count} of {algorithm.n} nodes"
                )
            if count < 1:
                raise ParameterError(
                    f"fault schedule {self.name!r}: window at round "
                    f"{window.start} corrupts no nodes (algorithm f="
                    f"{algorithm.f}); use no schedule for fault-free runs"
                )

    def describe(self) -> dict[str, Any]:
        """Summary dictionary for trace metadata and experiment records."""
        return {
            "name": self.name,
            "windows": [window.to_dict() for window in self.windows],
        }

    def to_dict(self) -> dict[str, Any]:
        """JSON-serialisable form (inverse of :meth:`from_dict`)."""
        return self.describe()

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "FaultSchedule":
        """Rebuild a schedule from its :meth:`to_dict` form."""
        return cls(
            name=str(data["name"]),
            windows=tuple(
                FaultWindow.from_dict(window) for window in data["windows"]
            ),
        )


@dataclass(frozen=True)
class Perturbations:
    """Everything that perturbs one run beyond its baseline adversary.

    Attributes
    ----------
    loss:
        Per-link probability that a correct sender's message arrives one
        round staler than scheduled (a synchronous-model rendering of
        message loss: the receiver falls back to the sender's previous
        broadcast instead of receiving nothing).
    delay:
        Maximum per-link delivery delay in rounds; each link independently
        delivers the sender's state from ``Uniform{0..delay}`` rounds ago.
        Both knobs apply only to correct senders — Byzantine links are
        forged anyway — and never to a node's own self-link.
    schedule:
        Optional :class:`FaultSchedule`; requires the run's baseline
        adversary to be fault-free (the schedule owns the faulty set).
    """

    loss: float = 0.0
    delay: int = 0
    schedule: FaultSchedule | None = field(default=None)

    def __post_init__(self) -> None:
        if not 0.0 <= self.loss < 1.0:
            raise ParameterError(
                f"loss must be a probability in [0, 1), got {self.loss}"
            )
        if self.delay < 0:
            raise ParameterError(f"delay must be non-negative, got {self.delay}")

    @property
    def active(self) -> bool:
        """Whether this perturbation set changes anything at all."""
        return self.loss > 0.0 or self.delay > 0 or self.schedule is not None

    @property
    def message_plane_active(self) -> bool:
        """Whether the loss/delay message-plane knobs are engaged."""
        return self.loss > 0.0 or self.delay > 0

    def validate(self, algorithm: Any, adversary: Any = None) -> None:
        """Validate the schedule and the baseline adversary against a run."""
        if self.schedule is not None:
            self.schedule.validate(algorithm)
            if adversary is not None and adversary.faulty:
                raise ParameterError(
                    "a fault schedule owns the faulty set; the baseline "
                    "adversary must be fault-free ('none'), got faulty nodes "
                    f"{sorted(adversary.faulty)}"
                )

    def describe(self) -> dict[str, Any]:
        """Summary dictionary for trace metadata."""
        summary: dict[str, Any] = {"loss": self.loss, "delay": self.delay}
        if self.schedule is not None:
            summary["schedule"] = self.schedule.describe()
        return summary

    def to_dict(self) -> dict[str, Any]:
        """JSON-serialisable form (inverse of :meth:`from_dict`)."""
        return {
            "loss": self.loss,
            "delay": self.delay,
            "schedule": None if self.schedule is None else self.schedule.to_dict(),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "Perturbations":
        """Rebuild perturbations from their :meth:`to_dict` form."""
        schedule = data.get("schedule")
        return cls(
            loss=float(data.get("loss", 0.0)),
            delay=int(data.get("delay", 0)),
            schedule=None if schedule is None else FaultSchedule.from_dict(schedule),
        )


# ---------------------------------------------------------------------- #
# Preset builders (bound by the semantics catalogue)
# ---------------------------------------------------------------------- #


def build_churn_schedule(
    start: int = 5,
    down: int = 6,
    adversarial: int = 6,
    num_faults: int | None = None,
) -> FaultSchedule:
    """Churn: nodes crash, return adversarial, then rejoin as correct.

    One cohort of ``num_faults`` nodes is silent (crash) for ``down``
    rounds from ``start``, then actively Byzantine (``random-state``) for
    ``adversarial`` rounds, then rejoins as correct with arbitrary states —
    the full node-lifecycle jolt the self-stabilisation guarantee covers.
    """
    if down < 1 or adversarial < 1:
        raise ParameterError(
            f"churn phases must last at least one round, got down={down}, "
            f"adversarial={adversarial}"
        )
    return FaultSchedule(
        name="churn",
        windows=(
            FaultWindow(
                start=start,
                duration=down,
                strategy="crash",
                num_faults=num_faults,
                cohort=0,
            ),
            FaultWindow(
                start=start + down,
                duration=adversarial,
                strategy="random-state",
                num_faults=num_faults,
                cohort=0,
            ),
        ),
    )


def build_rolling_schedule(
    start: int = 0,
    period: int = 12,
    rotations: int = 3,
    strategy: str = "random-state",
    num_faults: int | None = None,
) -> FaultSchedule:
    """A rotating adversary: a fresh faulty set every ``period`` rounds.

    Each rotation draws a new set of ``num_faults`` nodes; the previous
    cohort rejoins as correct with arbitrary states at the same boundary,
    so the correct set keeps shifting under the algorithm.
    """
    if period < 1:
        raise ParameterError(f"period must be positive, got {period}")
    if rotations < 1:
        raise ParameterError(f"rotations must be positive, got {rotations}")
    return FaultSchedule(
        name="rolling",
        windows=tuple(
            FaultWindow(
                start=start + rotation * period,
                duration=period,
                strategy=strategy,
                num_faults=num_faults,
            )
            for rotation in range(rotations)
        ),
    )


def build_late_adversary_schedule(
    start: int = 30,
    duration: int | None = 10,
    strategy: str = "random-state",
    num_faults: int | None = None,
) -> FaultSchedule:
    """An adversary that wakes only after the run has long stabilised.

    Exercises the perturbation-after-agreement case: the algorithm counts
    undisturbed until ``start``, suffers ``duration`` adversarial rounds,
    and must re-converge once the nodes rejoin (``duration=None`` keeps the
    adversary active until the end, leaving nothing to recover from).
    """
    return FaultSchedule(
        name="late-adversary",
        windows=(
            FaultWindow(
                start=start,
                duration=duration,
                strategy=strategy,
                num_faults=num_faults,
            ),
        ),
    )
