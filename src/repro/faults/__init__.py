"""Dynamic fault injection: schedules, churn and message-plane perturbations.

Every adversary strategy in :mod:`repro.network.adversary` fixes its faulty
set before round 0 — which exercises Byzantine *tolerance* but never the
*self-stabilisation* the paper is actually about (convergence from arbitrary
configurations reached mid-run).  This package closes that gap:

* :class:`FaultWindow` / :class:`FaultSchedule` — declarative, seeded plans
  composing the existing strategies over time-varying faulty sets, including
  churn: nodes crash, return under adversarial control, and rejoin as
  correct with *arbitrary* states (the self-stabilisation workload).
* :class:`Perturbations` — the full perturbation surface of one run: an
  optional schedule plus per-link message loss probability and bounded
  delay, applied identically (up to RNG streams) by the scalar and batch
  engines.
* :mod:`repro.faults.runtime` — the scalar execution machinery: the
  per-round schedule state machine and the loss/delay message plane.

Schedule presets (churn, rolling, late-adversary) are declared once in
:mod:`repro.semantics` and surfaced by the registries, the CLI and the
parity harness like any other component.
"""

from repro.faults.runtime import PerturbationRuntime, run_perturbed_round
from repro.faults.schedule import (
    FaultSchedule,
    FaultWindow,
    Perturbations,
    build_churn_schedule,
    build_late_adversary_schedule,
    build_rolling_schedule,
)

__all__ = [
    "FaultWindow",
    "FaultSchedule",
    "Perturbations",
    "PerturbationRuntime",
    "run_perturbed_round",
    "build_churn_schedule",
    "build_rolling_schedule",
    "build_late_adversary_schedule",
]
