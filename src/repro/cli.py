"""The unified ``repro`` command line — one front door for everything.

Installed as the ``repro`` console script and runnable as ``python -m
repro``.  Subcommands:

========== ==================================================================
``run``        run one scenario (algorithms x adversaries x faults grid)
               through the :class:`~repro.scenarios.scenario.Scenario`
               facade and print a stabilisation summary
``campaign``   ``define`` / ``run`` / ``resume`` / ``summarize`` — the
               campaign engine commands (shared with
               ``python -m repro.campaigns``)
``experiment`` regenerate a paper artefact: ``table1``, ``table2``,
               ``figure1``, ``figure2``, ``scaling``, ``pulling``,
               ``ablation``
``list``       discover algorithms, adversaries, fault schedules and
               experiments with one-line descriptions (the unified
               component registry)
``verify``     exhaustively model-check a registry algorithm
               (Section 2 definition of a synchronous counter), then run
               the static-analysis pass over the installed tree
``lint``       determinism-aware static analysis (:mod:`repro.lint`):
               prove the invariants the parity harness only samples
========== ==================================================================

All help and description strings are explicit literals, so the CLI works
under ``python -OO`` (docstrings stripped).
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from repro._version import __version__
from repro.campaigns.cli import (
    dispatch,
    parse_algorithm,
    parse_fault_schedule,
    parse_num_faults,
    register_commands,
)
from repro.campaigns.results import CampaignStore, RunResult, summarize_results
from repro.campaigns.spec import ENGINES, FAULT_PATTERNS
from repro.core.errors import ParameterError
from repro.experiments.catalog import experiment_catalog
from repro.lint.cli import register_lint_command
from repro.obs.cli import add_observability_arguments, observation_from_args
from repro.scenarios import Scenario, default_component_registry

__all__ = ["main", "build_parser"]


# ---------------------------------------------------------------------- #
# Command handlers
# ---------------------------------------------------------------------- #


def _command_run(args: argparse.Namespace) -> int:
    """Compile the flags into a Scenario, execute it, print a summary."""
    scenario = Scenario()
    for spec in args.algorithm:
        scenario = scenario.counter(spec.name, **dict(spec.params))
    if args.adversary:
        scenario = scenario.adversary(*args.adversary)
    if args.faults:
        scenario = scenario.faults(*args.faults)
    scenario = (
        scenario.runs(args.runs)
        .seed(args.seed)
        .max_rounds(args.max_rounds)
        .stop_after_agreement(args.stop_after_agreement)
        .min_tail(args.min_tail)
        .fault_pattern(args.fault_pattern)
        .engine(args.engine)
    )
    if args.loss:
        scenario = scenario.loss(args.loss)
    if args.delay:
        scenario = scenario.delay(args.delay)
    if args.fault_schedule:
        schedule_name, schedule_params = args.fault_schedule
        scenario = scenario.fault_schedule(schedule_name, **dict(schedule_params))
    if args.name:
        scenario = scenario.named(args.name)

    store = CampaignStore(args.store) if args.store else None

    def progress(done: int, total: int, result: RunResult) -> None:
        status = "FAIL" if result.error else (
            f"stab@{result.stabilization_round}" if result.stabilized else "no-stab"
        )
        print(f"[{done}/{total}] {result.run_id}: {status}", flush=True)

    with observation_from_args(args) as observer:
        report = scenario.execute(
            jobs=args.jobs,
            store=store,
            progress=None if args.quiet else progress,
            observer=observer,
        )
    name = scenario.to_campaign_spec().name
    suffix = f" -> {store.path}" if store is not None else ""
    print(
        f"scenario '{name}': {report.total} runs "
        f"({report.executed} executed, {report.skipped} resumed, "
        f"{report.failed} failed) in {report.elapsed:.2f}s{suffix}"
    )
    if report.fallback_reasons and not args.quiet:
        print("scalar fallbacks (see `repro list adversaries` for coverage):")
        for reason in report.fallback_reasons:
            print(f"  - {reason}")
    group_by = tuple(
        column.strip() for column in args.group_by.split(",") if column.strip()
    )
    table = summarize_results(
        report.results, group_by=group_by, name=f"Scenario summary — {name}"
    )
    print(table.to_markdown() if args.markdown else table.format_table())
    return 1 if report.failed else 0


def _command_experiment(args: argparse.Namespace) -> int:
    """Run a catalogue experiment and print its tables.

    Observability flags work here without per-experiment wiring: the
    observer is installed as the process default for the duration of the
    command, and every campaign the experiment runs picks it up.
    """
    with observation_from_args(args):
        results = args.experiment.run(args)
    renderer = "to_markdown" if args.markdown else "format_table"
    print("\n\n".join(getattr(result, renderer)() for result in results))
    return 0


def _algorithm_detail(name: str) -> list[str]:
    """The ``list --verbose`` detail lines of one algorithm, from its spec."""
    from repro.semantics import algorithm_semantics, format_schema

    spec = algorithm_semantics(name)
    state = "flat integer states" if spec.flat_state else "boosted (structured) states"
    scalar = "deterministic" if spec.scalar_deterministic else "randomised"
    batch = "bit-identical" if spec.batch_deterministic else "statistically equivalent"
    lines = [
        f"params: {format_schema(spec.parameters)}",
        f"semantics: {state}; scalar {scalar}, batch {batch}",
    ]
    if spec.rng_note:
        lines.append(f"rng: {spec.rng_note}")
    lines.append(f"source: {spec.source}")
    return lines


def _adversary_detail(name: str) -> list[str]:
    """The ``list --verbose`` detail lines of one strategy, from its spec."""
    from repro.semantics import adversary_semantics, format_schema

    spec = adversary_semantics(name)
    scalar = "deterministic" if spec.scalar_deterministic else "randomised"
    lines = [
        f"params: {format_schema(spec.parameters)}",
        f"semantics: scalar {scalar}; batch {spec.coverage_note()}",
        f"source: {spec.source}",
    ]
    return lines


def _fault_schedule_detail(name: str) -> list[str]:
    """The ``list --verbose`` detail lines of one fault schedule, from its spec."""
    from repro.semantics import fault_schedule_semantics, format_schema

    spec = fault_schedule_semantics(name)
    scalar = "deterministic" if spec.scalar_deterministic else "randomised"
    engine = (
        "batch-covered"
        if spec.batch_covered
        else "scalar engine only (named fallback under engine='auto')"
    )
    return [
        f"params: {format_schema(spec.parameters)}",
        f"semantics: scalar {scalar}; {engine}",
        f"source: {spec.source}",
    ]


def _command_list(args: argparse.Namespace) -> int:
    """List algorithms, adversaries and experiments with descriptions."""
    registry = default_component_registry()
    sections: list[str] = []
    verbose = getattr(args, "verbose", False)

    def format_rows(rows: list[tuple[str, str, list[str]]]) -> str:
        width = max(len(name) for name, _, _ in rows)
        lines = []
        for name, text, details in rows:
            lines.append(f"  {name.ljust(width)}  {text}")
            for detail in details:
                lines.append(f"  {' ' * width}    {detail}")
        return "\n".join(lines)

    def batch_suffix(entry: dict) -> str:
        return f" [batch: {entry['batch']}]" if entry.get("batch") else ""

    if args.kind in ("algorithms", "all"):
        rows = [
            (
                entry["name"],
                f"[{entry['model']}] {entry['description']}" + batch_suffix(entry),
                _algorithm_detail(entry["name"]) if verbose else [],
            )
            for entry in registry.describe(kind="algorithm")
            if args.model is None or entry["model"] == args.model
        ]
        if rows:
            sections.append("Algorithms:\n" + format_rows(rows))
    if args.kind in ("adversaries", "all"):
        rows = [
            (
                entry["name"],
                entry["description"] + batch_suffix(entry),
                _adversary_detail(entry["name"]) if verbose else [],
            )
            for entry in registry.describe(kind="adversary")
        ]
        sections.append("Adversaries:\n" + format_rows(rows))
    if args.kind in ("fault-schedules", "all"):
        from repro.semantics import fault_schedule_descriptions

        rows = [
            (
                name,
                description,
                _fault_schedule_detail(name) if verbose else [],
            )
            for name, description in fault_schedule_descriptions().items()
        ]
        sections.append("Fault schedules:\n" + format_rows(rows))
    if args.kind in ("experiments", "all"):
        rows = [
            (experiment.name, experiment.description, [])
            for experiment in experiment_catalog().values()
        ]
        sections.append("Experiments:\n" + format_rows(rows))
    if not sections:
        print("nothing to list (no component matches the filters)")
        return 1
    print("\n\n".join(sections))
    return 0


def _command_verify(args: argparse.Namespace) -> int:
    """Exhaustively verify a registry algorithm as a synchronous counter."""
    from repro.verification.checker import verify_counter

    registry = default_component_registry()
    component = registry.get(args.algorithm.name, kind="algorithm")
    if component.model != "broadcast":
        raise ParameterError(
            f"verify needs a broadcast-model algorithm with an enumerable "
            f"state space; {component.name!r} is a {component.model}-model "
            "algorithm"
        )
    algorithm = registry.build_algorithm(
        args.algorithm.name, **dict(args.algorithm.params)
    )
    report = verify_counter(
        algorithm,
        max_faults=args.max_faults,
        max_configurations=args.max_configurations,
    )
    print(
        f"verify {report.algorithm_name}: n={report.n} f<={report.f} c={report.c}"
    )
    for pattern in report.patterns:
        faulty = ",".join(str(node) for node in sorted(pattern.faulty)) or "-"
        outcome = (
            f"stabilizes in <= {pattern.stabilization_time} rounds"
            if pattern.stabilizes
            else f"FAILS (counterexample: {pattern.counterexample})"
        )
        print(
            f"  F={{{faulty}}}: {outcome} "
            f"[good {pattern.good_configurations}/{pattern.total_configurations}]"
        )
    if report.is_synchronous_counter:
        print(
            f"VERIFIED: synchronous {report.c}-counter, exact worst-case "
            f"stabilisation time {report.stabilization_time} rounds"
        )
        return _verify_lint_step(args)
    print(f"NOT VERIFIED: {len(report.failing_patterns())} fault pattern(s) fail")
    _verify_lint_step(args)
    return 1


def _verify_lint_step(args: argparse.Namespace) -> int:
    """The static half of ``repro verify``: lint the installed tree.

    The model checker proves the *dynamic* counter contract for one small
    instance; the lint pass proves the *static* determinism invariants for
    every line, so the one-shot health check covers both.
    """
    if getattr(args, "skip_lint", False):
        return 0
    from repro.lint import run_lint

    lint_report = run_lint()
    for finding in lint_report.unwaived():
        print(finding.format())
    print(lint_report.summary())
    return lint_report.exit_code()


# ---------------------------------------------------------------------- #
# Parser
# ---------------------------------------------------------------------- #


def build_parser() -> argparse.ArgumentParser:
    """The unified ``repro`` argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Self-stabilising Byzantine synchronous counting "
            "(Lenzen, Rybicki, Suomela — PODC 2015): scenarios, campaigns, "
            "experiments and verification behind one command."
        ),
    )
    parser.add_argument("--version", action="version", version=__version__)
    subparsers = parser.add_subparsers(dest="command", required=True)

    run = subparsers.add_parser(
        "run",
        help="run one scenario (algorithms x adversaries x faults) and summarize it",
        description=(
            "Run one scenario through the repro.scenarios facade: the grid "
            "algorithms x adversaries x fault counts x runs, executed "
            "serially or over worker processes with bit-identical results."
        ),
    )
    run.set_defaults(handler=_command_run)
    run.add_argument(
        "algorithm",
        nargs="+",
        type=parse_algorithm,
        metavar="NAME[:k=v,...]",
        help="registry algorithm(s) with parameters, e.g. 'figure2:levels=1,c=2'",
    )
    run.add_argument(
        "--adversary",
        action="append",
        metavar="STRATEGY",
        help="adversary strategy (repeatable; default: random-state)",
    )
    run.add_argument(
        "--faults",
        action="append",
        type=parse_num_faults,
        metavar="N|auto",
        help="faults per run (repeatable; default: auto = the algorithm's f)",
    )
    run.add_argument("--runs", type=int, default=10, help="runs per grid setting")
    run.add_argument("--seed", type=int, default=0, help="master seed")
    run.add_argument("--max-rounds", type=int, default=1000, help="per-run round cap")
    run.add_argument(
        "--stop-after-agreement",
        type=int,
        default=20,
        help="early-stop window; 0 disables early stopping",
    )
    run.add_argument("--min-tail", type=int, default=2)
    run.add_argument("--fault-pattern", choices=FAULT_PATTERNS, default="random")
    run.add_argument(
        "--fault-schedule",
        type=parse_fault_schedule,
        metavar="NAME[:k=v,...]",
        help=(
            "named fault schedule with parameters, e.g. "
            "'churn:start=5,down=6' (see `repro list fault-schedules`); "
            "the schedule owns the faulty set, so the scenario runs "
            "fault-free baselines and measures re-stabilisation"
        ),
    )
    run.add_argument(
        "--loss",
        type=float,
        default=0.0,
        help=(
            "per-link message loss probability in [0, 1) — a lost link "
            "re-delivers the sender's previous broadcast (broadcast model only)"
        ),
    )
    run.add_argument(
        "--delay",
        type=int,
        default=0,
        help=(
            "maximum per-link message delay in rounds; each link delivers a "
            "uniformly random 0..DELAY-old broadcast (broadcast model only)"
        ),
    )
    run.add_argument(
        "--engine",
        choices=list(ENGINES),
        default="auto",
        help=(
            "execution engine: 'auto' vectorises bit-identical run groups "
            "through the NumPy batch engine, 'batch' forces it for every "
            "kernel-covered group, 'scalar' runs one simulation at a time"
        ),
    )
    run.add_argument("--name", help="scenario name (default: the algorithm names)")
    run.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes (>1 enables the multiprocessing executor)",
    )
    run.add_argument(
        "--store",
        help="JSONL result store for persistence and resume (optional)",
    )
    run.add_argument(
        "--group-by",
        default="algorithm,adversary",
        help="comma-separated RunResult fields for the summary table",
    )
    run.add_argument(
        "--markdown", action="store_true", help="emit the summary as Markdown"
    )
    run.add_argument(
        "--quiet", action="store_true", help="suppress per-run progress lines"
    )
    add_observability_arguments(run)

    campaign = subparsers.add_parser(
        "campaign",
        help="define, run, resume and summarize campaign definition files",
        description=(
            "The campaign engine: declarative JSON grids, resumable JSONL "
            "stores, serial or multiprocessing execution."
        ),
    )
    campaign_sub = campaign.add_subparsers(dest="campaign_command", required=True)
    register_commands(campaign_sub)

    experiment = subparsers.add_parser(
        "experiment",
        help="regenerate a table/figure/claim of the paper",
        description="Regenerate one experiment of the paper (E1-E11).",
    )
    experiment_sub = experiment.add_subparsers(dest="experiment_name", required=True)
    for entry in experiment_catalog().values():
        experiment_parser = experiment_sub.add_parser(
            entry.name, help=entry.description, description=entry.description
        )
        for option in entry.options:
            option.add_to(experiment_parser)
        experiment_parser.add_argument(
            "--markdown",
            action="store_true",
            help="emit the tables as Markdown instead of aligned text",
        )
        add_observability_arguments(experiment_parser)
        experiment_parser.set_defaults(handler=_command_experiment, experiment=entry)

    list_parser = subparsers.add_parser(
        "list",
        help=(
            "list algorithms, adversaries, fault schedules and experiments "
            "with descriptions"
        ),
        description=(
            "Discovery: every registered algorithm, adversary strategy and "
            "fault-schedule preset (the unified component registry and "
            "semantics catalogue) plus the experiment catalogue."
        ),
    )
    list_parser.set_defaults(handler=_command_list)
    list_parser.add_argument(
        "kind",
        nargs="?",
        choices=("algorithms", "adversaries", "fault-schedules", "experiments", "all"),
        default="all",
        help="restrict the listing to one kind (default: all)",
    )
    list_parser.add_argument(
        "--model",
        choices=("broadcast", "pulling"),
        help="restrict algorithms to one communication model",
    )
    list_parser.add_argument(
        "--verbose",
        action="store_true",
        help=(
            "show the spec-derived details per component: parameter schema "
            "with defaults, state space, determinism classes and source"
        ),
    )

    verify = subparsers.add_parser(
        "verify",
        help="exhaustively model-check a registry algorithm",
        description=(
            "Exhaustively verify that an algorithm is a synchronous counter "
            "(Section 2): check every execution from every configuration "
            "under every fault pattern, and report the exact worst-case "
            "stabilisation time.  Feasible for small instances only."
        ),
    )
    verify.set_defaults(handler=_command_verify)
    verify.add_argument(
        "algorithm",
        type=parse_algorithm,
        metavar="NAME[:k=v,...]",
        help="registry algorithm with parameters, e.g. 'trivial:c=3'",
    )
    verify.add_argument(
        "--max-faults",
        type=int,
        default=None,
        help="check all faulty sets up to this size (default: the algorithm's f)",
    )
    verify.add_argument(
        "--max-configurations",
        type=int,
        default=200_000,
        help="safety cap on the configuration-space size per fault pattern",
    )
    verify.add_argument(
        "--skip-lint",
        action="store_true",
        help="skip the static-analysis pass that follows the model check",
    )

    register_lint_command(subparsers)

    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point for ``python -m repro`` and the ``repro`` console script."""
    return dispatch(build_parser().parse_args(argv))


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
