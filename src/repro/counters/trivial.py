"""The trivial 0-resilient counter on a single node (Section 4.1).

The paper's recursive construction can be bootstrapped from "trivial counters
for ``n = 1`` and ``f = 0``": a single node simply keeps a value in ``[c]``
and increments it modulo ``c`` every round.  Because *any* state is a valid
counter position, the algorithm is self-stabilising with stabilisation time
zero, resilience ``f = 0`` and space complexity ``⌈log2 c⌉`` bits.
"""

from __future__ import annotations

from typing import Any, Iterator, Sequence

from repro.core.algorithm import AlgorithmInfo, State, SynchronousCountingAlgorithm
from repro.core.errors import ParameterError
from repro.util.rng import ensure_rng

__all__ = ["TrivialCounter"]


class TrivialCounter(SynchronousCountingAlgorithm):
    """Single-node modulo-``c`` counter; the base case of Corollary 1."""

    def __init__(self, c: int) -> None:
        if c < 2:
            raise ParameterError(f"counter size c must be at least 2, got {c}")
        info = AlgorithmInfo(
            name=f"Trivial[c={c}]",
            deterministic=True,
            source="Section 4.1 (base case)",
        )
        super().__init__(n=1, f=0, c=c, info=info)

    def num_states(self) -> int:
        return self.c

    def stabilization_bound(self) -> int:
        return 0

    def states(self) -> Iterator[int]:
        return iter(range(self.c))

    def default_state(self) -> int:
        return 0

    def random_state(self, rng: Any = None) -> int:
        return ensure_rng(rng).randrange(self.c)

    def is_valid_state(self, state: Any) -> bool:
        return isinstance(state, int) and not isinstance(state, bool) and 0 <= state < self.c

    def coerce_message(self, message: Any) -> int:
        if isinstance(message, bool) or not isinstance(message, int):
            return 0
        return message % self.c

    def transition(self, node: int, messages: Sequence[State]) -> int:
        if node != 0:
            raise ParameterError(f"TrivialCounter has a single node, got node={node}")
        if len(messages) != 1:
            raise ParameterError(f"expected 1 message, got {len(messages)}")
        return (self.coerce_message(messages[0]) + 1) % self.c

    def output(self, node: int, state: State) -> int:
        return self.coerce_message(state)
