"""Concrete synchronous counting algorithms used as building blocks and baselines.

* :class:`~repro.counters.trivial.TrivialCounter` — the 0-resilient one-node
  counter used as the base case of the recursive construction (Section 4.1).
* :class:`~repro.counters.naive.NaiveMajorityCounter` — a fault-intolerant
  follow-the-majority counter, used as a negative example in tests and in the
  verification demos.
* :class:`~repro.counters.randomized.RandomizedFollowMajorityCounter` — the
  folklore randomised counter of [6, 7] (pick random states until a clear
  majority emerges, then follow it), the randomised baseline of Table 1.
* :class:`~repro.counters.baselines.DolevHochModel` and friends — analytic
  complexity models of the prior-work rows of Table 1.
* :mod:`~repro.counters.registry` — the catalogue that backs the Table 1
  experiment.
"""

from repro.counters.naive import NaiveMajorityCounter
from repro.counters.randomized import RandomizedFollowMajorityCounter
from repro.counters.trivial import TrivialCounter

__all__ = [
    "TrivialCounter",
    "NaiveMajorityCounter",
    "RandomizedFollowMajorityCounter",
]
