"""Catalogue of the algorithms and models that back the Table 1 experiment.

The registry provides named factories for every *executable* algorithm in the
library (so experiments, benchmarks and examples can construct them
uniformly) plus the published-bounds models of the prior-work rows.  The
factories themselves — names, descriptions, parameter schemas, determinism
flags — are generated from the declarative specs in :mod:`repro.semantics`;
this module only provides the registry container and lookup/build surface.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

from repro.core.errors import ParameterError
from repro.counters.baselines import PRIOR_WORK_MODELS, ComplexityModel
from repro.semantics import Parameter, algorithm_names, algorithm_semantics, validate_parameters

__all__ = [
    "AlgorithmFactory",
    "AlgorithmRegistry",
    "default_registry",
]


@dataclass(frozen=True)
class AlgorithmFactory:
    """A named, documented constructor for an executable algorithm.

    ``model`` names the communication model the algorithm runs in:
    ``"broadcast"`` (Section 2, :class:`SynchronousCountingAlgorithm`) or
    ``"pulling"`` (Section 5, :class:`~repro.network.pulling.PullingAlgorithm`).
    ``parameters`` is the declared schema (empty means "unchecked": ad-hoc
    factories registered by tests or callers keep working without declaring
    one).
    """

    name: str
    description: str
    build: Callable[..., Any]
    deterministic: bool = True
    source: str = ""
    model: str = "broadcast"
    parameters: tuple[Parameter, ...] = ()


class AlgorithmRegistry:
    """Registry mapping names to algorithm factories and published models."""

    def __init__(self) -> None:
        self._factories: dict[str, AlgorithmFactory] = {}
        self._models: list[ComplexityModel] = []

    # ------------------------------------------------------------------ #
    # Registration
    # ------------------------------------------------------------------ #

    def register(self, factory: AlgorithmFactory) -> None:
        """Register an executable algorithm factory under its name."""
        if factory.name in self._factories:
            raise ParameterError(f"algorithm '{factory.name}' is already registered")
        self._factories[factory.name] = factory

    def register_model(self, model: ComplexityModel) -> None:
        """Register a published-bounds model (a non-executable Table 1 row)."""
        self._models.append(model)

    # ------------------------------------------------------------------ #
    # Lookup
    # ------------------------------------------------------------------ #

    def names(self, model: str | None = None) -> list[str]:
        """Names of all registered executable algorithms.

        ``model`` restricts the listing to one communication model
        (``"broadcast"`` / ``"pulling"``).
        """
        return sorted(
            name
            for name, factory in self._factories.items()
            if model is None or factory.model == model
        )

    def factory(self, name: str) -> AlgorithmFactory:
        """Return the factory registered under ``name``."""
        try:
            return self._factories[name]
        except KeyError:
            known = ", ".join(sorted(self._factories)) or "(none)"
            raise ParameterError(
                f"unknown algorithm '{name}'; registered algorithms: {known}"
            ) from None

    def build(self, name: str, **kwargs: Any) -> Any:
        """Construct the algorithm registered under ``name``.

        Returns a :class:`SynchronousCountingAlgorithm` for broadcast-model
        entries and a :class:`~repro.network.pulling.PullingAlgorithm` for
        pulling-model entries.  When the factory declares a parameter
        schema, unknown keyword arguments raise :class:`ParameterError`
        with the schema in the message instead of a bare ``TypeError``.
        """
        factory = self.factory(name)
        if factory.parameters:
            validate_parameters("algorithm", name, factory.parameters, kwargs)
        return factory.build(**kwargs)

    def models(self) -> list[ComplexityModel]:
        """All registered published-bounds models."""
        return list(self._models)

    def describe(self, model: str | None = None) -> list[dict[str, Any]]:
        """Summary dictionaries of every executable algorithm, for listings.

        Shares its shape with
        :meth:`repro.scenarios.registry.ComponentRegistry.describe`, the
        unified discovery surface that subsumes this registry.
        """
        return [
            {
                "name": factory.name,
                "kind": "algorithm",
                "description": factory.description,
                "model": factory.model,
                "deterministic": factory.deterministic,
                "source": factory.source,
            }
            for name in self.names(model=model)
            for factory in (self._factories[name],)
        ]


def default_registry() -> AlgorithmRegistry:
    """Build the default registry with all executable algorithms and models.

    Every entry is derived from its :class:`~repro.semantics.AlgorithmSemantics`
    spec — this function adds no component knowledge of its own.
    """
    registry = AlgorithmRegistry()
    for name in algorithm_names():
        spec = algorithm_semantics(name)
        registry.register(
            AlgorithmFactory(
                name=spec.name,
                description=spec.description,
                build=spec.build,
                deterministic=spec.scalar_deterministic,
                source=spec.source,
                model=spec.model,
                parameters=spec.parameters,
            )
        )
    for model in PRIOR_WORK_MODELS:
        registry.register_model(model)
    return registry
