"""Catalogue of the algorithms and models that back the Table 1 experiment.

The registry provides named factories for every *executable* algorithm in the
library (so experiments, benchmarks and examples can construct them
uniformly) plus the published-bounds models of the prior-work rows.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

from repro.core.algorithm import SynchronousCountingAlgorithm
from repro.core.errors import ParameterError
from repro.counters.baselines import PRIOR_WORK_MODELS, ComplexityModel
from repro.counters.naive import NaiveMajorityCounter
from repro.counters.randomized import RandomizedFollowMajorityCounter
from repro.counters.trivial import TrivialCounter

__all__ = [
    "AlgorithmFactory",
    "AlgorithmRegistry",
    "default_registry",
]


@dataclass(frozen=True)
class AlgorithmFactory:
    """A named, documented constructor for an executable algorithm."""

    name: str
    description: str
    build: Callable[..., SynchronousCountingAlgorithm]
    deterministic: bool = True
    source: str = ""


class AlgorithmRegistry:
    """Registry mapping names to algorithm factories and published models."""

    def __init__(self) -> None:
        self._factories: dict[str, AlgorithmFactory] = {}
        self._models: list[ComplexityModel] = []

    # ------------------------------------------------------------------ #
    # Registration
    # ------------------------------------------------------------------ #

    def register(self, factory: AlgorithmFactory) -> None:
        """Register an executable algorithm factory under its name."""
        if factory.name in self._factories:
            raise ParameterError(f"algorithm '{factory.name}' is already registered")
        self._factories[factory.name] = factory

    def register_model(self, model: ComplexityModel) -> None:
        """Register a published-bounds model (a non-executable Table 1 row)."""
        self._models.append(model)

    # ------------------------------------------------------------------ #
    # Lookup
    # ------------------------------------------------------------------ #

    def names(self) -> list[str]:
        """Names of all registered executable algorithms."""
        return sorted(self._factories)

    def factory(self, name: str) -> AlgorithmFactory:
        """Return the factory registered under ``name``."""
        try:
            return self._factories[name]
        except KeyError:
            known = ", ".join(sorted(self._factories)) or "(none)"
            raise ParameterError(
                f"unknown algorithm '{name}'; registered algorithms: {known}"
            ) from None

    def build(self, name: str, **kwargs: Any) -> SynchronousCountingAlgorithm:
        """Construct the algorithm registered under ``name``."""
        return self.factory(name).build(**kwargs)

    def models(self) -> list[ComplexityModel]:
        """All registered published-bounds models."""
        return list(self._models)


def _build_corollary1_base(c: int = 2, f: int = 1) -> SynchronousCountingAlgorithm:
    """Factory for the Corollary 1 counter (imported lazily to avoid cycles)."""
    from repro.core.recursion import optimal_resilience_counter

    return optimal_resilience_counter(f=f, c=c)


def _build_figure2_counter(levels: int = 1, c: int = 2) -> SynchronousCountingAlgorithm:
    """Factory for the Figure 2 recursive counter (k = 3 blocks per level)."""
    from repro.core.recursion import figure2_counter

    return figure2_counter(levels=levels, c=c)


def default_registry() -> AlgorithmRegistry:
    """Build the default registry with all executable algorithms and models."""
    registry = AlgorithmRegistry()
    registry.register(
        AlgorithmFactory(
            name="trivial",
            description="0-resilient single-node counter (base case of Corollary 1)",
            build=lambda c=2: TrivialCounter(c=c),
            deterministic=True,
            source="Section 4.1",
        )
    )
    registry.register(
        AlgorithmFactory(
            name="naive-majority",
            description="fault-intolerant follow-the-majority counter (negative baseline)",
            build=lambda n=4, c=2, claimed_resilience=0: NaiveMajorityCounter(
                n=n, c=c, claimed_resilience=claimed_resilience
            ),
            deterministic=True,
            source="baseline",
        )
    )
    registry.register(
        AlgorithmFactory(
            name="randomized-follow-majority",
            description="randomised counter of [6, 7]: random states until a clear majority",
            build=lambda n=4, f=1, c=2, seed=0: RandomizedFollowMajorityCounter(
                n=n, f=f, c=c, seed=seed
            ),
            deterministic=False,
            source="Table 1, [6, 7]",
        )
    )
    registry.register(
        AlgorithmFactory(
            name="corollary1",
            description="optimal-resilience counter built from trivial counters (Corollary 1)",
            build=_build_corollary1_base,
            deterministic=True,
            source="Corollary 1",
        )
    )
    registry.register(
        AlgorithmFactory(
            name="figure2",
            description="recursive k=3 construction of Figure 2: A(4,1) -> A(12,3) -> A(36,7)",
            build=_build_figure2_counter,
            deterministic=True,
            source="Figure 2 / Theorem 1",
        )
    )
    for model in PRIOR_WORK_MODELS:
        registry.register_model(model)
    return registry
