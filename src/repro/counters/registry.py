"""Catalogue of the algorithms and models that back the Table 1 experiment.

The registry provides named factories for every *executable* algorithm in the
library (so experiments, benchmarks and examples can construct them
uniformly) plus the published-bounds models of the prior-work rows.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

from repro.core.algorithm import SynchronousCountingAlgorithm
from repro.core.errors import ParameterError
from repro.counters.baselines import PRIOR_WORK_MODELS, ComplexityModel
from repro.counters.naive import NaiveMajorityCounter
from repro.counters.randomized import RandomizedFollowMajorityCounter
from repro.counters.trivial import TrivialCounter

__all__ = [
    "AlgorithmFactory",
    "AlgorithmRegistry",
    "default_registry",
]


@dataclass(frozen=True)
class AlgorithmFactory:
    """A named, documented constructor for an executable algorithm.

    ``model`` names the communication model the algorithm runs in:
    ``"broadcast"`` (Section 2, :class:`SynchronousCountingAlgorithm`) or
    ``"pulling"`` (Section 5, :class:`~repro.network.pulling.PullingAlgorithm`).
    """

    name: str
    description: str
    build: Callable[..., Any]
    deterministic: bool = True
    source: str = ""
    model: str = "broadcast"


class AlgorithmRegistry:
    """Registry mapping names to algorithm factories and published models."""

    def __init__(self) -> None:
        self._factories: dict[str, AlgorithmFactory] = {}
        self._models: list[ComplexityModel] = []

    # ------------------------------------------------------------------ #
    # Registration
    # ------------------------------------------------------------------ #

    def register(self, factory: AlgorithmFactory) -> None:
        """Register an executable algorithm factory under its name."""
        if factory.name in self._factories:
            raise ParameterError(f"algorithm '{factory.name}' is already registered")
        self._factories[factory.name] = factory

    def register_model(self, model: ComplexityModel) -> None:
        """Register a published-bounds model (a non-executable Table 1 row)."""
        self._models.append(model)

    # ------------------------------------------------------------------ #
    # Lookup
    # ------------------------------------------------------------------ #

    def names(self, model: str | None = None) -> list[str]:
        """Names of all registered executable algorithms.

        ``model`` restricts the listing to one communication model
        (``"broadcast"`` / ``"pulling"``).
        """
        return sorted(
            name
            for name, factory in self._factories.items()
            if model is None or factory.model == model
        )

    def factory(self, name: str) -> AlgorithmFactory:
        """Return the factory registered under ``name``."""
        try:
            return self._factories[name]
        except KeyError:
            known = ", ".join(sorted(self._factories)) or "(none)"
            raise ParameterError(
                f"unknown algorithm '{name}'; registered algorithms: {known}"
            ) from None

    def build(self, name: str, **kwargs: Any) -> Any:
        """Construct the algorithm registered under ``name``.

        Returns a :class:`SynchronousCountingAlgorithm` for broadcast-model
        entries and a :class:`~repro.network.pulling.PullingAlgorithm` for
        pulling-model entries.
        """
        return self.factory(name).build(**kwargs)

    def models(self) -> list[ComplexityModel]:
        """All registered published-bounds models."""
        return list(self._models)

    def describe(self, model: str | None = None) -> list[dict[str, Any]]:
        """Summary dictionaries of every executable algorithm, for listings.

        Shares its shape with
        :meth:`repro.scenarios.registry.ComponentRegistry.describe`, the
        unified discovery surface that subsumes this registry.
        """
        return [
            {
                "name": factory.name,
                "kind": "algorithm",
                "description": factory.description,
                "model": factory.model,
                "deterministic": factory.deterministic,
                "source": factory.source,
            }
            for name in self.names(model=model)
            for factory in (self._factories[name],)
        ]


def _build_corollary1_base(c: int = 2, f: int = 1) -> SynchronousCountingAlgorithm:
    """Factory for the Corollary 1 counter (imported lazily to avoid cycles)."""
    from repro.core.recursion import optimal_resilience_counter

    return optimal_resilience_counter(f=f, c=c)


def _build_figure2_counter(levels: int = 1, c: int = 2) -> SynchronousCountingAlgorithm:
    """Factory for the Figure 2 recursive counter (k = 3 blocks per level)."""
    from repro.core.recursion import figure2_counter

    return figure2_counter(levels=levels, c=c)


def _build_sampled_boosted(
    c: int = 2,
    k: int = 3,
    inner_f: int = 1,
    inner_c: int = 960,
    sample_size: int | None = 4,
):
    """Factory for the Theorem 4 pulling-model counter over a Corollary 1 inner.

    The defaults mirror the Corollary 4 experiment: the 12-node
    ``A(12, 3)``-equivalent sampled counter over the ``A(4, 1)`` inner with
    counter size 960 (the multiple required by ``k = 3``, ``F = 3``).
    """
    from repro.core.recursion import optimal_resilience_counter
    from repro.sampling.pull_boosting import SampledBoostedCounter

    inner = optimal_resilience_counter(f=inner_f, c=inner_c)
    return SampledBoostedCounter(
        inner=inner, k=k, counter_size=c, sample_size=sample_size
    )


def _build_pseudo_random_boosted(
    c: int = 2,
    k: int = 3,
    inner_f: int = 1,
    inner_c: int = 960,
    sample_size: int | None = 4,
    link_seed: int = 0,
):
    """Factory for the Corollary 5 pseudo-random pulling-model counter."""
    from repro.core.recursion import optimal_resilience_counter
    from repro.sampling.pseudo_random import PseudoRandomBoostedCounter

    inner = optimal_resilience_counter(f=inner_f, c=inner_c)
    return PseudoRandomBoostedCounter(
        inner=inner,
        k=k,
        counter_size=c,
        sample_size=sample_size,
        link_seed=link_seed,
    )


def default_registry() -> AlgorithmRegistry:
    """Build the default registry with all executable algorithms and models."""
    registry = AlgorithmRegistry()
    registry.register(
        AlgorithmFactory(
            name="trivial",
            description="0-resilient single-node counter (base case of Corollary 1)",
            build=lambda c=2: TrivialCounter(c=c),
            deterministic=True,
            source="Section 4.1",
        )
    )
    registry.register(
        AlgorithmFactory(
            name="naive-majority",
            description="fault-intolerant follow-the-majority counter (negative baseline)",
            build=lambda n=4, c=2, claimed_resilience=0: NaiveMajorityCounter(
                n=n, c=c, claimed_resilience=claimed_resilience
            ),
            deterministic=True,
            source="baseline",
        )
    )
    registry.register(
        AlgorithmFactory(
            name="randomized-follow-majority",
            description="randomised counter of [6, 7]: random states until a clear majority",
            build=lambda n=4, f=1, c=2, seed=0: RandomizedFollowMajorityCounter(
                n=n, f=f, c=c, seed=seed
            ),
            deterministic=False,
            source="Table 1, [6, 7]",
        )
    )
    registry.register(
        AlgorithmFactory(
            name="corollary1",
            description="optimal-resilience counter built from trivial counters (Corollary 1)",
            build=_build_corollary1_base,
            deterministic=True,
            source="Corollary 1",
        )
    )
    registry.register(
        AlgorithmFactory(
            name="figure2",
            description="recursive k=3 construction of Figure 2: A(4,1) -> A(12,3) -> A(36,7)",
            build=_build_figure2_counter,
            deterministic=True,
            source="Figure 2 / Theorem 1",
        )
    )
    registry.register(
        AlgorithmFactory(
            name="sampled-boosted",
            description="pulling-model boosted counter with sampled voting (Theorem 4)",
            build=_build_sampled_boosted,
            deterministic=False,
            source="Theorem 4 / Corollary 4",
            model="pulling",
        )
    )
    registry.register(
        AlgorithmFactory(
            name="pseudo-random-boosted",
            description="pulling-model counter with sampling fixed by a link seed (Corollary 5)",
            build=_build_pseudo_random_boosted,
            deterministic=False,
            source="Corollary 5",
            model="pulling",
        )
    )
    for model in PRIOR_WORK_MODELS:
        registry.register_model(model)
    return registry
