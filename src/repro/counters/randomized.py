"""The folklore randomised synchronous counter (baseline of Table 1, refs [6, 7]).

The paper describes the idea as: "the nodes can just pick random states until
a clear majority of them has the same state, after which they start to follow
the majority."  Concretely, every node keeps a value in ``[c]``; each round it
looks at the received values and

* if some value ``v`` is supported by at least ``n - f`` nodes, it adopts
  ``v + 1 mod c`` (the deterministic *follow* step), and
* otherwise it picks a fresh value uniformly at random.

With ``f < n/3`` two different values can never simultaneously reach the
``n - f`` threshold at two correct nodes, so once all correct nodes hold the
same value they keep counting in agreement forever; before that, every round
has probability at least ``c^{-(n-f)}`` of unifying the correct nodes, giving
an expected stabilisation time exponential in ``n - f`` — the
``2^{2(n-f)}`` row of Table 1 (for ``c = 2``).

The algorithm keeps only ``⌈log2 c⌉`` bits of state per node but is
randomised; it is the space-efficient/non-deterministic point of comparison
for the deterministic constructions of the paper.
"""

from __future__ import annotations

import random
from typing import Any, Iterator, Sequence

from repro.core.algorithm import AlgorithmInfo, State, SynchronousCountingAlgorithm
from repro.core.errors import ParameterError
from repro.util.rng import ensure_rng

__all__ = ["RandomizedFollowMajorityCounter"]


class RandomizedFollowMajorityCounter(SynchronousCountingAlgorithm):
    """Randomised ``c``-counter: follow a clear majority, otherwise randomise."""

    def __init__(self, n: int, f: int, c: int = 2, seed: int | None = 0) -> None:
        if f > 0 and 3 * f >= n:
            raise ParameterError(
                f"randomised counting still requires n > 3f, got n={n}, f={f}"
            )
        info = AlgorithmInfo(
            name=f"RandomizedFollowMajority[n={n}, f={f}, c={c}]",
            deterministic=False,
            source="Table 1, refs [6, 7]",
            notes="expected stabilisation time exponential in n - f",
        )
        super().__init__(n=n, f=f, c=c, info=info)
        self._rng = ensure_rng(seed)
        #: The follow threshold, hoisted out of the per-round transition.
        self._threshold = n - f

    # ------------------------------------------------------------------ #
    # Randomness management
    # ------------------------------------------------------------------ #

    def reseed(self, seed: int | random.Random | None) -> None:
        """Reset the algorithm's internal randomness (for reproducible trials)."""
        self._rng = ensure_rng(seed)

    # ------------------------------------------------------------------ #
    # (X, g, h)
    # ------------------------------------------------------------------ #

    def num_states(self) -> int:
        return self.c

    def expected_stabilization_rounds(self) -> float:
        """The coarse ``c^(n-f)`` bound on the expected stabilisation time."""
        return float(self.c ** (self.n - self.f))

    def states(self) -> Iterator[int]:
        return iter(range(self.c))

    def default_state(self) -> int:
        return 0

    def random_state(self, rng: Any = None) -> int:
        return ensure_rng(rng).randrange(self.c)

    def is_valid_state(self, state: Any) -> bool:
        return isinstance(state, int) and not isinstance(state, bool) and 0 <= state < self.c

    def coerce_message(self, message: Any) -> int:
        if isinstance(message, bool) or not isinstance(message, int):
            return 0
        return message % self.c

    def transition(self, node: int, messages: Sequence[State]) -> int:
        if len(messages) != self.n:
            raise ParameterError(f"expected {self.n} messages, got {len(messages)}")
        # Single pass: coerce, tally and track the smallest value reaching
        # the n - f threshold at once (no Counter, no candidate-list scan).
        # At most one value can reach n - f support among correct nodes
        # (two would require 2(n - 2f) <= n - f, i.e. n <= 3f), but the
        # minimum is tracked anyway to keep the historical tie-break exact.
        threshold = self._threshold
        counts: dict[int, int] = {}
        supported: int | None = None
        c = self.c
        for message in messages:
            if isinstance(message, bool) or not isinstance(message, int):
                value = 0
            else:
                value = message % c
            count = counts.get(value, 0) + 1
            counts[value] = count
            if count >= threshold and (supported is None or value < supported):
                supported = value
        if supported is not None:
            return (supported + 1) % c
        return self._rng.randrange(c)

    def output(self, node: int, state: State) -> int:
        return self.coerce_message(state)
