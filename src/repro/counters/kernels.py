"""Vectorised broadcast-model kernels for the registry algorithms.

Each kernel implements :class:`repro.network.batch.BatchKernel` for one
algorithm family, executing a synchronous round for a whole ``(B, n)`` batch
of trials with array operations:

* :class:`TrivialBatchKernel` — the single-node modulo counter.
* :class:`NaiveMajorityBatchKernel` — one-hot tallies over the received
  matrix, strict-majority selection, minimum fallback.
* :class:`RandomizedFollowMajorityBatchKernel` — the ``n - f`` threshold test
  plus vectorised random re-draws (NumPy randomness; statistically
  equivalent to the scalar per-node ``random.Random`` stream).
* :class:`BoostedBatchKernel` — the full Theorem 1 construction
  (Corollary 1 / Figure 2 stacks): recursive inner-counter transitions,
  leader-pointer decomposition and two-level majority votes, and the
  vectorised phase king of Table 2.  Deterministic and bit-identical to
  :meth:`repro.core.boosting.BoostedCounter.transition`.

The boosted kernel represents a node state as the concatenation of its inner
counter's fields plus the phase king registers ``(a, d)``, mirroring
:class:`~repro.core.boosting.BoostedState`; recursion over
``BoostedCounter``/``TrivialCounter`` stacks therefore yields a fixed-width
integer encoding for every counter the planner instantiates.  Constructions
whose counter periods would overflow int64 (Corollary 1 beyond ``f = 4``)
report no kernel and fall back to the scalar engine.
"""

from __future__ import annotations

from typing import Any, Sequence

import numpy as np

from repro.core.boosting import BoostedCounter, BoostedState
from repro.core.phase_king import INFINITY
from repro.counters.naive import NaiveMajorityCounter
from repro.counters.randomized import RandomizedFollowMajorityCounter
from repro.counters.trivial import TrivialCounter
from repro.network.batch import BatchKernel

__all__ = [
    "TrivialBatchKernel",
    "NaiveMajorityBatchKernel",
    "RandomizedFollowMajorityBatchKernel",
    "BoostedBatchKernel",
    "build_broadcast_kernel",
]

#: Largest counter period the boosted kernel vectorises; beyond this the
#: int64 modular arithmetic of the leader-pointer decomposition would
#: overflow and the scalar engine (arbitrary-precision ints) must be used.
_INT64_SAFE = 2**62

_BIG = np.iinfo(np.int64).max


def strict_majority(values: np.ndarray, default: int) -> np.ndarray:
    """Vectorised ``majority(values, default)`` over the last axis.

    A value wins when it occurs strictly more than half the time — at most
    one value can, so any max-count representative is the winner; otherwise
    ``default`` is returned, matching :func:`repro.core.voting.majority`.
    """
    size = values.shape[-1]
    counts = (values[..., :, None] == values[..., None, :]).sum(axis=-1)
    best = counts.argmax(axis=-1)
    best_count = np.take_along_axis(counts, best[..., None], axis=-1)[..., 0]
    best_value = np.take_along_axis(values, best[..., None], axis=-1)[..., 0]
    return np.where(2 * best_count > size, best_value, default)


def _guarded_increment(a: np.ndarray, c: int) -> np.ndarray:
    """The paper's guarded increment: ``a + 1 mod c`` unless ``a = ∞``."""
    return np.where(a == INFINITY, INFINITY, (a + 1) % c)


def vectorized_phase_king(
    own_a: np.ndarray,
    own_d: np.ndarray,
    values: np.ndarray,
    eligible: np.ndarray,
    own_support: np.ndarray,
    high: "int | np.ndarray",
    king_value: np.ndarray,
    step: np.ndarray,
    c: int,
) -> tuple[np.ndarray, np.ndarray]:
    """The Table 2 instruction sets, vectorised, shared by both boosted kernels.

    All three instruction kinds are computed and selected per element by
    ``step = R mod 3`` (receivers may disagree on ``R`` before
    stabilisation).  The deterministic construction passes the absolute
    thresholds (``high = N - F``, ``eligible`` from ``z_j > F``) and reads
    the king's broadcast column; the sampled construction (Lemma 8) passes
    ``high = ⌈2M/3⌉``, ``eligible`` from ``z_j > M/3`` and the directly
    pulled king value.

    Parameters are element-wise aligned arrays: ``values`` holds the
    received/sampled ``a``-registers (last axis = senders/samples),
    ``eligible`` marks the entries that qualify for the vote instruction's
    ``min{j : z_j > threshold}``, and ``king_value`` the already-gathered
    king register per receiver.
    """
    # I_{3l}: broadcast — keep a only with enough support, increment.
    a_broadcast = _guarded_increment(np.where(own_support >= high, own_a, INFINITY), c)

    # I_{3l+1}: vote — d certifies support for a counter value; adopt the
    # smallest qualifying value (reset when none qualifies), increment.
    d_vote = ((own_a != INFINITY) & (own_support >= high)).astype(np.int64)
    minimum = np.where(eligible, values, _BIG).min(axis=-1)
    a_vote = _guarded_increment(np.where(minimum == _BIG, INFINITY, minimum), c)

    # I_{3l+2}: king — nodes without certified support adopt the king's
    # value (∞ read as the cap C), then increment unguarded.
    adopted = np.where(king_value == INFINITY, c, np.minimum(c, king_value))
    a_king = np.where((own_a == INFINITY) | (own_d == 0), adopted, own_a)
    a_king = (a_king + 1) % c

    new_a = np.where(step == 0, a_broadcast, np.where(step == 1, a_vote, a_king))
    new_d = np.where(step == 0, own_d, np.where(step == 1, d_vote, 1))
    return new_a, new_d


class BoostedStateCodec:
    """Field encoding of :class:`BoostedState` over an inner core.

    Shared by the broadcast :class:`BoostedBatchKernel` and the pulling
    :class:`repro.sampling.kernels.SampledBoostedBatchKernel`: the state is
    the inner core's fields followed by the phase king registers ``(a, d)``.
    """

    def __init__(self, inner_core, c: int) -> None:
        self.inner_core = inner_core
        self.c = c
        self.fields = inner_core.fields + 2

    def encode(self, state: Any) -> tuple[int, ...]:
        return (*self.inner_core.encode(state.inner), int(state.a), int(state.d))

    def decode(self, row: Sequence[int]) -> BoostedState:
        inner_fields = self.inner_core.fields
        return BoostedState(
            inner=self.inner_core.decode(row[:inner_fields]),
            a=int(row[inner_fields]),
            d=int(row[inner_fields + 1]),
        )

    def outputs(self, states: np.ndarray) -> np.ndarray:
        a = states[..., self.inner_core.fields]
        return np.where((a >= 0) & (a < self.c), a, 0)

    def random_fields(
        self, rng: np.random.Generator, shape: tuple[int, ...]
    ) -> np.ndarray:
        inner = self.inner_core.random_fields(rng, shape)
        # random_state draws a uniformly from [c] ∪ {∞}: c + 1 choices with
        # the last one mapping to the INFINITY sentinel.
        a = rng.integers(0, self.c + 1, size=shape, dtype=np.int64)
        a = np.where(a == self.c, INFINITY, a)
        d = rng.integers(0, 2, size=shape, dtype=np.int64)
        return np.concatenate([inner, a[..., None], d[..., None]], axis=-1)


# ---------------------------------------------------------------------- #
# Flat integer counters
# ---------------------------------------------------------------------- #


class _IntStateKernel(BatchKernel):
    """Shared encoding for algorithms whose state is one integer in [c]."""

    fields = 1

    def encode(self, state: Any) -> tuple[int, ...]:
        return (int(state),)

    def decode(self, row: Sequence[int]) -> int:
        return int(row[0])

    def outputs(self, states: np.ndarray) -> np.ndarray:
        return states[..., 0]

    def random_fields(self, rng, shape):
        return rng.integers(0, self.algorithm.c, size=shape + (1,), dtype=np.int64)


class TrivialBatchKernel(_IntStateKernel):
    """The single-node modulo-``c`` counter (Section 4.1)."""

    deterministic = True

    def step(self, view, round_index, rng):
        # The node's only message is its own state; no adversary can exist
        # (f = 0), so the shared sender states are the received messages.
        return (view.states + 1) % self.algorithm.c


class NaiveMajorityBatchKernel(_IntStateKernel):
    """Fault-intolerant follow-the-majority (the negative baseline)."""

    deterministic = True

    def step(self, view, round_index, rng):
        algorithm = self.algorithm
        counts = view.field_counts(0, algorithm.c)  # (B, receiver, value)
        best = counts.argmax(axis=-1)
        best_count = np.take_along_axis(counts, best[..., None], axis=-1)[..., 0]
        fallback = view.field_min(0)
        agreed = np.where(2 * best_count > algorithm.n, best, fallback)
        return (((agreed + 1) % algorithm.c))[..., None]


class RandomizedFollowMajorityBatchKernel(_IntStateKernel):
    """The folklore randomised counter: follow an ``n - f`` majority or redraw.

    The redraw uses the batch's NumPy generator instead of the algorithm's
    per-instance ``random.Random``, so stabilisation-time distributions match
    the scalar engine statistically but not sample-by-sample.
    """

    deterministic = False

    def step(self, view, round_index, rng):
        algorithm = self.algorithm
        threshold = algorithm.n - algorithm.f
        counts = view.field_counts(0, algorithm.c)  # (B, receiver, value)
        supported = counts >= threshold
        any_supported = supported.any(axis=-1)
        # argmax over booleans finds the first (smallest) supported value —
        # at most one value can reach n - f anyway (n > 3f).
        minimum_supported = supported.argmax(axis=-1)
        draws = rng.integers(
            0, algorithm.c, size=(view.batch, view.n), dtype=np.int64
        )
        follow = (minimum_supported + 1) % algorithm.c
        return np.where(any_supported, follow, draws)[..., None]


# ---------------------------------------------------------------------- #
# The Theorem 1 construction
# ---------------------------------------------------------------------- #


class _TrivialCore:
    """Recursion base: a block of one trivial node, one int64 field."""

    fields = 1

    def __init__(self, algorithm: TrivialCounter) -> None:
        self.algorithm = algorithm

    def encode(self, state: Any) -> tuple[int, ...]:
        return (int(state),)

    def decode(self, row: Sequence[int]) -> int:
        return int(row[0])

    def outputs(self, states: np.ndarray) -> np.ndarray:
        return states[..., 0]

    def random_fields(self, rng, shape):
        return rng.integers(0, self.algorithm.c, size=shape + (1,), dtype=np.int64)

    def transition(self, messages: np.ndarray, receiver_index: np.ndarray) -> np.ndarray:
        # One node per block: the single message is the node's own state.
        return ((messages[..., 0, 0] + 1) % self.algorithm.c)[..., None]


class _BoostedCore:
    """One Theorem 1 level: inner blocks, leader votes, phase king.

    ``transition`` consumes per-receiver message matrices of shape
    ``(B, R, n, fields)`` — receiver slot ``r`` holds the coerced states this
    receiver read from all ``n`` members of the *current* level — plus the
    receivers' within-level node indices ``(R,)``.  Nested levels reuse the
    same interface on the sliced own-block columns, mirroring the recursion
    of :meth:`repro.core.boosting.BoostedCounter.transition` exactly.
    """

    def __init__(self, algorithm: BoostedCounter, inner: "_TrivialCore | _BoostedCore"):
        self.algorithm = algorithm
        self.inner = inner
        self.codec = BoostedStateCodec(inner, algorithm.c)
        self.fields = self.codec.fields
        layout = algorithm.layout
        interpretation = algorithm.interpretation
        self.k = layout.k
        self.block_size = layout.n
        self.tau = interpretation.tau
        self.m = interpretation.m
        member_block = np.arange(layout.total_nodes) // layout.n
        self.member_block = member_block
        self.periods = np.array(
            [interpretation.block_period(int(block)) for block in member_block],
            dtype=np.int64,
        )
        self.pointer_divisor = np.array(
            [interpretation.base ** int(block) for block in member_block],
            dtype=np.int64,
        )

    # -- state encoding (delegated to the shared codec) ------------------- #

    def encode(self, state: Any) -> tuple[int, ...]:
        return self.codec.encode(state)

    def decode(self, row: Sequence[int]) -> BoostedState:
        return self.codec.decode(row)

    def outputs(self, states: np.ndarray) -> np.ndarray:
        return self.codec.outputs(states)

    def random_fields(self, rng, shape):
        return self.codec.random_fields(rng, shape)

    # -- the round -------------------------------------------------------- #

    def transition(self, messages: np.ndarray, receiver_index: np.ndarray) -> np.ndarray:
        algorithm = self.algorithm
        inner_fields = self.inner.fields
        batch, receivers, members = messages.shape[0], messages.shape[1], messages.shape[2]
        n, f, c = algorithm.n, algorithm.f, algorithm.c

        # Step 1: the block-level copy of the inner algorithm, fed with the
        # receiver's own-block columns of the message matrix.
        blocks = receiver_index // self.block_size
        block_columns = blocks[:, None] * self.block_size + np.arange(self.block_size)
        inner_messages = messages[
            :, np.arange(receivers)[:, None], block_columns, :inner_fields
        ]
        new_inner = self.inner.transition(inner_messages, receiver_index % self.block_size)

        # Step 2: the voted round counter R (Section 3.3) — decompose every
        # member's announced inner output into (r, y) and the leader pointer,
        # then take the two-level strict majorities.
        announced = self.inner.outputs(messages[..., :inner_fields])
        reduced = announced % self.periods
        round_component = reduced % self.tau
        pointer = ((reduced // self.tau) // self.pointer_divisor) % self.m
        pointer_blocks = pointer.reshape(batch, receivers, self.k, self.block_size)
        block_votes = strict_majority(pointer_blocks, 0)
        leader = strict_majority(block_votes, 0)
        round_blocks = round_component.reshape(batch, receivers, self.k, self.block_size)
        leader_rounds = np.take_along_axis(
            round_blocks, leader[..., None, None], axis=2
        )[..., 0, :]
        round_value = strict_majority(leader_rounds, 0)

        # Step 3: instruction set I_R of the phase king (Table 2) with the
        # absolute thresholds N - F and F; the king's register is read from
        # its broadcast column.
        a_received = messages[..., inner_fields]
        own_a = np.take_along_axis(a_received, receiver_index[None, :, None], axis=2)[
            ..., 0
        ]
        own_d = np.take_along_axis(
            messages[..., inner_fields + 1], receiver_index[None, :, None], axis=2
        )[..., 0]
        support = (a_received[..., :, None] == a_received[..., None, :]).sum(axis=-1)
        own_support = (a_received == own_a[..., None]).sum(axis=-1)

        schedule = round_value % self.tau
        king_value = np.take_along_axis(
            a_received, (schedule // 3)[..., None], axis=2
        )[..., 0]
        new_a, new_d = vectorized_phase_king(
            own_a=own_a,
            own_d=own_d,
            values=a_received,
            eligible=(a_received != INFINITY) & (support > f),
            own_support=own_support,
            high=n - f,
            king_value=king_value,
            step=schedule % 3,
            c=c,
        )
        return np.concatenate(
            [new_inner, new_a[..., None], new_d[..., None]], axis=-1
        )


def build_boosted_core(algorithm: Any) -> "_TrivialCore | _BoostedCore | None":
    """Recursive core for a TrivialCounter/BoostedCounter stack, or ``None``.

    ``None`` signals an unsupported inner algorithm or a parameterisation
    whose counter periods exceed the int64-safe range.
    """
    if isinstance(algorithm, TrivialCounter):
        if algorithm.c >= _INT64_SAFE:
            return None
        return _TrivialCore(algorithm)
    if isinstance(algorithm, BoostedCounter):
        inner = build_boosted_core(algorithm.inner)
        if inner is None:
            return None
        if algorithm.interpretation.max_period() >= _INT64_SAFE:
            return None
        return _BoostedCore(algorithm, inner)
    return None


class BoostedBatchKernel(BatchKernel):
    """Batch kernel for the deterministic Theorem 1 counters.

    Covers every planner instantiation over the trivial base (``corollary1``,
    ``figure2`` and hand-built :class:`~repro.core.boosting.BoostedCounter`
    stacks) whose counter periods fit in int64.
    """

    deterministic = True

    def __init__(self, algorithm: BoostedCounter, core: _BoostedCore) -> None:
        super().__init__(algorithm)
        self.core = core
        self.fields = core.fields

    def encode(self, state: Any) -> tuple[int, ...]:
        return self.core.encode(state)

    def decode(self, row: Sequence[int]) -> BoostedState:
        return self.core.decode(row)

    def outputs(self, states: np.ndarray) -> np.ndarray:
        return self.core.outputs(states)

    def random_fields(self, rng, shape):
        return self.core.random_fields(rng, shape)

    def step(self, view, round_index, rng):
        messages = view.received_stack()
        return self.core.transition(messages, np.arange(self.algorithm.n))


def build_broadcast_kernel(algorithm: Any) -> BatchKernel | None:
    """The vectorised kernel for a broadcast-model algorithm, or ``None``."""
    if isinstance(algorithm, TrivialCounter):
        return TrivialBatchKernel(algorithm)
    if isinstance(algorithm, NaiveMajorityCounter):
        return NaiveMajorityBatchKernel(algorithm)
    if isinstance(algorithm, RandomizedFollowMajorityCounter):
        return RandomizedFollowMajorityBatchKernel(algorithm)
    if isinstance(algorithm, BoostedCounter):
        core = build_boosted_core(algorithm)
        if isinstance(core, _BoostedCore):
            return BoostedBatchKernel(algorithm, core)
    return None
