"""Analytic complexity models for the prior-work rows of Table 1.

Table 1 of the paper compares published *bounds* — resilience, stabilisation
time and state bits — of prior synchronous 2-counting algorithms with the new
construction.  The prior algorithms themselves are either defined only via
reductions (Dolev & Hoch [2] run Θ(f) concurrent consensus instances) or were
found by SAT-based synthesis and published without their transition tables
([4, 5]).  Re-deriving them is outside the scope of this reproduction, so —
exactly like the paper — the comparison uses their published formulas.

Every model exposes the same summary dictionary shape as
``SynchronousCountingAlgorithm.describe`` so the Table 1 harness can mix
measured rows (our executable algorithms) with published rows (these models).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.core.errors import ParameterError
from repro.util.intmath import ceil_log2

__all__ = [
    "ComplexityModel",
    "DolevHochModel",
    "RandomizedFolkloreModel",
    "DolevEtAlOneResilientModel",
    "ThisWorkModel",
    "PRIOR_WORK_MODELS",
]


@dataclass(frozen=True)
class ComplexityModel:
    """A published-bounds row of Table 1.

    Attributes
    ----------
    name:
        Row label.
    source:
        Bibliographic reference as cited in the paper.
    deterministic:
        Whether the algorithm is deterministic.
    resilience_description:
        Human-readable resilience condition (e.g. ``"f < n/3"``).
    resilience_fn:
        Maximum tolerated ``f`` as a function of ``n`` (``None`` if the row is
        specific to fixed parameters).
    stabilization_fn:
        Published stabilisation-time bound as a function of ``(n, f)``.
    state_bits_fn:
        Published state-bits bound as a function of ``(n, f)``.
    notes:
        Additional remarks.
    """

    name: str
    source: str
    deterministic: bool
    resilience_description: str
    resilience_fn: Callable[[int], int] | None
    stabilization_fn: Callable[[int, int], float]
    state_bits_fn: Callable[[int, int], float]
    notes: str = ""
    extra: dict[str, Any] = field(default_factory=dict)

    def max_resilience(self, n: int) -> int | None:
        """Maximum tolerated number of faults for ``n`` nodes (or ``None``)."""
        if self.resilience_fn is None:
            return None
        return self.resilience_fn(n)

    def row(self, n: int, f: int) -> dict[str, Any]:
        """Return the Table 1 row evaluated at ``(n, f)``."""
        if n < 1 or f < 0:
            raise ParameterError(f"invalid parameters n={n}, f={f}")
        return {
            "name": self.name,
            "source": self.source,
            "deterministic": self.deterministic,
            "resilience": self.resilience_description,
            "n": n,
            "f": f,
            "stabilization_bound": self.stabilization_fn(n, f),
            "state_bits": self.state_bits_fn(n, f),
            "measured": False,
            "notes": self.notes,
        }


def _optimal_resilience(n: int) -> int:
    """``f < n/3`` expressed as the largest admissible integer ``f``."""
    return max((n - 1) // 3, 0)


#: Dolev & Hoch [2]: deterministic, O(f) time, O(f log f) bits.
DolevHochModel = ComplexityModel(
    name="Dolev-Hoch (consensus cascade)",
    source="[2] DISC 2007",
    deterministic=True,
    resilience_description="f < n/3",
    resilience_fn=_optimal_resilience,
    stabilization_fn=lambda n, f: 6.0 * (f + 1),
    state_bits_fn=lambda n, f: max(1.0, (f + 1) * math.log2(max(f + 1, 2))),
    notes="runs Θ(f) concurrent consensus instances; published bounds O(f) / O(f log f)",
)

#: Folklore randomised counter [6, 7]: 2 bits, expected 2^{2(n-f)} rounds.
RandomizedFolkloreModel = ComplexityModel(
    name="Randomised follow-the-majority",
    source="[6, 7]",
    deterministic=False,
    resilience_description="f < n/3",
    resilience_fn=_optimal_resilience,
    stabilization_fn=lambda n, f: float(2 ** (2 * (n - f))),
    state_bits_fn=lambda n, f: 2.0,
    notes="expected stabilisation time",
)

#: Computer-designed 1-resilient counters of [5].
DolevEtAlOneResilientModel = ComplexityModel(
    name="Synthesised 1-resilient (n >= 4)",
    source="[5] (computer-designed)",
    deterministic=True,
    resilience_description="f = 1, n >= 4",
    resilience_fn=lambda n: 1 if n >= 4 else 0,
    stabilization_fn=lambda n, f: 7.0,
    state_bits_fn=lambda n, f: 2.0,
    notes="3 states per node; transition table published only via SAT synthesis",
)

#: The paper's own headline bounds (Theorem 3).
ThisWorkModel = ComplexityModel(
    name="This work (Theorem 3)",
    source="Lenzen-Rybicki-Suomela, PODC 2015",
    deterministic=True,
    resilience_description="f = n^{1-o(1)}",
    resilience_fn=None,
    stabilization_fn=lambda n, f: float(max(f, 1)),
    state_bits_fn=lambda n, f: (
        (math.log2(max(f, 2)) ** 2) / max(math.log2(math.log2(max(f, 4))), 1.0)
        + ceil_log2(2)
    ),
    notes="O(f) stabilisation, O(log^2 f / log log f + log c) bits",
)

#: The published rows reproduced from Table 1 of the paper.
PRIOR_WORK_MODELS: tuple[ComplexityModel, ...] = (
    DolevHochModel,
    RandomizedFolkloreModel,
    DolevEtAlOneResilientModel,
    ThisWorkModel,
)
