"""A naive follow-the-majority counter with no Byzantine resilience.

Each node adopts ``(majority of received values) + 1 mod c`` and falls back to
``(minimum received value) + 1 mod c`` when no strict majority exists.  In a
fault-free network this synchronises within two rounds (every node sees the
same multiset); with even a single Byzantine node an adversary can keep two
halves of the network split forever by showing different receivers different
evidence.  The class is used as a *negative* baseline: the adversary
test-suite and the exhaustive verifier both demonstrate that it is **not** a
synchronous counter for ``f >= 1``, which exercises the machinery that
certifies the real constructions.
"""

from __future__ import annotations

from typing import Any, Iterator, Sequence

from repro.core.algorithm import AlgorithmInfo, State, SynchronousCountingAlgorithm
from repro.core.errors import ParameterError
from repro.util.rng import ensure_rng

__all__ = ["NaiveMajorityCounter"]


class NaiveMajorityCounter(SynchronousCountingAlgorithm):
    """Fault-intolerant majority-following ``c``-counter on ``n`` nodes."""

    def __init__(self, n: int, c: int, claimed_resilience: int = 0) -> None:
        """Create the counter.

        ``claimed_resilience`` exists so tests can *claim* a resilience and
        let the verifier refute it; the algorithm itself only tolerates 0
        faults.
        """
        if n < 1:
            raise ParameterError(f"n must be at least 1, got {n}")
        info = AlgorithmInfo(
            name=f"NaiveMajority[n={n}, c={c}]",
            deterministic=True,
            source="baseline (not from the paper)",
            notes="fault-intolerant; counter-example used by the verifier",
        )
        super().__init__(n=n, f=claimed_resilience, c=c, info=info)

    def num_states(self) -> int:
        return self.c

    def stabilization_bound(self) -> int:
        return 1 if self.f == 0 else self.c * self.n

    def states(self) -> Iterator[int]:
        return iter(range(self.c))

    def default_state(self) -> int:
        return 0

    def random_state(self, rng: Any = None) -> int:
        return ensure_rng(rng).randrange(self.c)

    def is_valid_state(self, state: Any) -> bool:
        return isinstance(state, int) and not isinstance(state, bool) and 0 <= state < self.c

    def coerce_message(self, message: Any) -> int:
        if isinstance(message, bool) or not isinstance(message, int):
            return 0
        return message % self.c

    def transition(self, node: int, messages: Sequence[State]) -> int:
        if len(messages) != self.n:
            raise ParameterError(f"expected {self.n} messages, got {len(messages)}")
        # Single pass: coerce, tally, and track both the running majority
        # candidate and the minimum (the no-strict-majority fallback).  A
        # strict majority is unique, so first-to-the-top equals Counter's
        # most_common winner whenever the strict test below passes.
        c = self.c
        counts: dict[int, int] = {}
        best_value = 0
        best_count = 0
        minimum: int | None = None
        for message in messages:
            if isinstance(message, bool) or not isinstance(message, int):
                value = 0
            else:
                value = message % c
            count = counts.get(value, 0) + 1
            counts[value] = count
            if count > best_count:
                best_count, best_value = count, value
            if minimum is None or value < minimum:
                minimum = value
        agreed = best_value if 2 * best_count > self.n else minimum
        assert agreed is not None  # n >= 1 guarantees at least one message
        return (agreed + 1) % c

    def output(self, node: int, state: State) -> int:
        return self.coerce_message(state)
