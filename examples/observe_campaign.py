"""Observe a campaign: live progress, then post-hoc metrics and events.

The ``repro.obs`` layer answers two questions every long campaign raises:
*is it making progress?* (live) and *where did the time go?* (post-hoc) —
without changing a single result, because observers only read.

This example runs one campaign twice over the same grid:

1. **Scalar engine, fully observed** — a rolling progress line on stderr
   while it runs, then the recorded event stream and the metrics registry
   are inspected: run counts, round histograms with sketch quantiles, and
   the engine-level round accounting.
2. **Batch engine, same grid** — the event stream now shows the
   vectorised scheduling decisions (``batch_group_scheduled`` /
   ``fallback_taken``), and the results are identical where the kernels
   are deterministic.

The same instrumentation is available without writing any code:

    python -m repro run naive-majority:n=6,c=3,claimed_resilience=1 \\
        --adversary crash --faults 1 --runs 50 \\
        --progress --metrics-out metrics.json --events-out events.jsonl

Run with::

    python examples/observe_campaign.py
"""

from __future__ import annotations

from repro.obs import (
    BatchGroupScheduled,
    FallbackTaken,
    MetricsRegistry,
    Observer,
    ProgressSink,
    RingBufferSink,
    RunFinished,
)
from repro.scenarios import Scenario


def build_scenario(runs: int, max_rounds: int, seed: int) -> Scenario:
    return (
        Scenario.counter("naive-majority", n=6, c=3, claimed_resilience=1)
        .adversary("crash", "mimic")
        .faults(1)
        .runs(runs)
        .max_rounds(max_rounds)
        .stop_after_agreement(6)
        .seed(seed)
        .named("observed-demo")
    )


def main(runs: int = 25, max_rounds: int = 80, seed: int = 11) -> None:
    scenario = build_scenario(runs, max_rounds, seed)

    # Part 1 — scalar engine, fully observed.  The observer bundles three
    # things: sinks for the event stream (here a progress line and an
    # in-memory ring buffer), an isolated metrics registry, and a round
    # sampling stride (0 keeps per-round events out of the hot loop).
    buffer = RingBufferSink()
    observer = Observer(
        sinks=(ProgressSink(), buffer),
        metrics=MetricsRegistry(),
        round_stride=0,
    )
    with observer:
        report = scenario.engine("scalar").execute(observer=observer)

    print(f"campaign finished: {report.executed} runs, {report.failed} failed")
    print()

    # The event stream: one typed event per lifecycle step, in order.
    finished = [e for e in buffer.events if isinstance(e, RunFinished)]
    stabilized = sum(1 for e in finished if e.stabilized)
    print(f"event stream: {len(buffer.events)} events, "
          f"{len(finished)} run_finished, {stabilized} stabilized")

    # The metrics registry: counters are exact, histograms are
    # power-of-two sketches whose quantiles are factor-2 bounds — cheap
    # enough to leave on for a million-run campaign.
    metrics = observer.metrics
    rounds = metrics.histogram("run.rounds")
    seconds = metrics.histogram("run.seconds")
    print(f"engine rounds simulated: {metrics.counter('engine.rounds').value}")
    print(f"rounds per run: mean {rounds.mean:.1f}, "
          f"p50 <= {rounds.quantile(0.5):.0f}, p90 <= {rounds.quantile(0.9):.0f}")
    print(f"wall time per run: mean {seconds.mean * 1000:.2f} ms "
          f"(total {seconds.total * 1000:.1f} ms over {seconds.count} runs)")
    print()

    # Part 2 — the same grid on the batch engine.  The event stream now
    # records which groups vectorised and which fell back (and why).
    batch_observer = Observer.recording(round_stride=0)
    batch_report = scenario.engine("auto").execute(observer=batch_observer)
    for event in batch_observer.buffer.of_kind(BatchGroupScheduled):
        print(f"batched: {event.label} ({event.runs} runs, "
              f"deterministic={event.deterministic})")
    for event in batch_observer.buffer.of_kind(FallbackTaken):
        print(f"fallback: {event.label} — {event.reason}")

    identical = [r.to_json() for r in report.results] == [
        r.to_json() for r in batch_report.results
    ]
    print(f"scalar and auto-batched results identical: {identical}")


if __name__ == "__main__":
    main()
