"""Energy-budgeted counting in the pulling model (Section 5 of the paper).

In a circuit, attributing communication cost to the *pulling* node lets each
node operate under a fixed per-round energy budget.  This example compares

* the deterministic broadcast construction (every node effectively hears
  from all ``n`` nodes each round), and
* the sampled pulling-model construction of Theorem 4, where a node pulls
  only its own block, ``M`` samples per block, ``M`` phase king samples and
  the ``F + 2`` potential kings,

measuring messages pulled per round and the empirical reliability after
stabilisation for a sweep of sample sizes.

Run with::

    python examples/energy_efficient_pulling.py
"""

from __future__ import annotations

from repro.core.recursion import optimal_resilience_counter
from repro.experiments.pulling import post_agreement_failure_rate
from repro.network import PhaseKingSkewAdversary, random_faulty_set
from repro.network.pulling import PullSimulationConfig, run_pull_simulation
from repro.network.stabilization import stabilization_round
from repro.sampling import SampledBoostedCounter, recommended_sample_size


def main() -> None:
    inner = optimal_resilience_counter(f=1, c=960)
    faulty = random_faulty_set(12, 1, rng=5)
    print("Pulling-model counter on 12 nodes (3 blocks of A(4,1)), Byzantine:", sorted(faulty))
    print(f"Recommended sample size M0 (Lemma 8, eta=12): {recommended_sample_size(12)} "
          "(larger than the network at this scale — the win appears for large eta)")
    print()
    print(f"{'M':>4} {'pulls/round':>12} {'broadcast':>10} {'stabilised':>11} {'blips/round':>12}")

    for sample_size in (2, 4, 8, 16):
        counter = SampledBoostedCounter(
            inner=inner, k=3, counter_size=2, sample_size=sample_size
        )
        trace = run_pull_simulation(
            counter,
            adversary=PhaseKingSkewAdversary(faulty),
            config=PullSimulationConfig(max_rounds=300, seed=5),
        )
        result = stabilization_round(trace, min_tail=20)
        failure = post_agreement_failure_rate(trace)
        print(
            f"{sample_size:>4} {counter.expected_pulls_per_round():>12} "
            f"{counter.n:>10} {str(result.stabilized):>11} {failure:>12.4f}"
        )

    print()
    print("Each pulled message carries the full node state; the per-round energy of a")
    print("node is therefore proportional to the pulls/round column.  Reliability")
    print("(fewer post-agreement blips) is bought with larger samples, exactly the")
    print("trade-off of Theorem 4 / Corollary 4.")


if __name__ == "__main__":
    main()
