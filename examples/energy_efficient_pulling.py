"""Energy-budgeted counting in the pulling model (Section 5 of the paper).

In a circuit, attributing communication cost to the *pulling* node lets each
node operate under a fixed per-round energy budget.  This example sweeps the
sample size ``M`` of the Theorem 4 sampled construction through a single
``repro.scenarios`` scenario — one pulling-model campaign whose algorithm
axis carries one ``sampled-boosted`` entry per ``M`` — and compares messages
pulled per round against the deterministic broadcast construction (where
every node effectively hears from all ``n`` nodes each round).

Run with::

    python examples/energy_efficient_pulling.py
"""

from __future__ import annotations

from repro.sampling import recommended_sample_size
from repro.scenarios import Scenario, default_component_registry


def main(
    sample_sizes: tuple[int, ...] = (2, 4, 8, 16),
    runs: int = 2,
    max_rounds: int = 300,
    seed: int = 5,
) -> None:
    print("Pulling-model counter on 12 nodes (3 blocks of A(4,1)), "
          "phase-king-skew adversary, 1 Byzantine node")
    print(f"Recommended sample size M0 (Lemma 8, eta=12): {recommended_sample_size(12)} "
          "(larger than the network at this scale — the win appears for large eta)")
    print()

    # One scenario, one campaign: the algorithm axis sweeps the sample size.
    scenario = Scenario()
    for sample_size in sample_sizes:
        scenario = scenario.counter("sampled-boosted", sample_size=sample_size)
    scenario = (
        scenario.adversary("phase-king-skew")
        .faults(1)
        .runs(runs)
        .max_rounds(max_rounds)
        .stop_after_agreement(0)
        .min_tail(20)
        .seed(seed)
        .named("energy-efficient-pulling")
    )
    report = scenario.execute()

    print(f"{'M':>4} {'pulls/round':>12} {'broadcast':>10} {'stabilised':>11} "
          f"{'max pulls':>10} {'blips/round':>12}")
    by_label: dict[str, list] = {}
    for result in report.results:
        by_label.setdefault(result.algorithm, []).append(result)
    registry = default_component_registry()
    for sample_size in sample_sizes:
        counter = registry.build_algorithm("sampled-boosted", sample_size=sample_size)
        bucket = by_label[f"sampled-boosted(sample_size={sample_size})"]
        stabilized = sum(int(result.stabilized) for result in bucket)
        max_pulls = max(result.max_pulls or 0 for result in bucket)
        failure_rate = sum(
            result.post_agreement_failure_rate or 0.0 for result in bucket
        ) / len(bucket)
        print(
            f"{sample_size:>4} {counter.expected_pulls_per_round():>12} "
            f"{counter.n:>10} {f'{stabilized}/{len(bucket)}':>11} "
            f"{max_pulls:>10} {failure_rate:>12.4f}"
        )

    print()
    print("Each pulled message carries the full node state; the per-round energy of a")
    print("node is therefore proportional to the pulls/round column.  Reliability")
    print("(fewer post-agreement blips) is bought with larger samples, exactly the")
    print("trade-off of Theorem 4 / Corollary 4.")


if __name__ == "__main__":
    main()
