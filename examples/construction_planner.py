"""Explore the recursive construction schedules of Section 4.

For a target resilience, compare the three ways the paper builds counters:

* Corollary 1 — one huge level: optimal resilience, ``f^{O(f)}`` time,
* Theorem 2  — fixed block count ``k``: ``Ω(n^{1-ε})`` resilience, ``O(f)``
  time, ``O(log² f)`` bits, and
* Theorem 3  — varying block counts: ``n^{1-o(1)}`` resilience with
  ``O(log² f / log log f)`` bits.

The plans are evaluated with exact integer arithmetic; nothing is simulated,
so arbitrarily large targets can be explored interactively.

Run with::

    python examples/construction_planner.py [target_resilience]
"""

from __future__ import annotations

import math
import sys

from repro import plan_corollary1, plan_figure2, plan_theorem2, plan_theorem3


def describe(label: str, plan) -> None:
    f = plan.resilience()
    n = plan.total_nodes()
    bound = plan.stabilization_bound()
    print(f"  {label}")
    print(f"    nodes n             = {n:.4g}" if n < 1e16 else f"    nodes n             = 2^{math.log2(n):.1f}")
    print(f"    resilience f        = {f:.4g}" if f < 1e16 else f"    resilience f        = 2^{math.log2(f):.1f}")
    print(f"    n / f               = {plan.node_to_fault_ratio():.2f}")
    if bound < 1e18:
        print(f"    stabilisation bound = {bound:.4g} rounds  ({bound / max(f,1):.3g} x f)")
    else:
        print(f"    stabilisation bound = 2^{math.log2(bound):.1f} rounds")
    print(f"    state bits per node = {plan.state_bits_bound()}")
    print(f"    levels              = {plan.depth}")
    print()


def main(target: int | None = None) -> None:
    if target is None:
        target = int(sys.argv[1]) if len(sys.argv) > 1 else 64
    print(f"Construction plans reaching resilience f >= {target}\n")

    if target <= 12:
        describe("Corollary 1 (single level, optimal resilience)", plan_corollary1(f=target))
    else:
        print("  Corollary 1 (single level): stabilisation bound is f^O(f) — "
              "astronomical at this target, skipped.\n")

    levels = 0
    while True:
        plan = plan_figure2(levels=levels)
        if plan.resilience() >= target:
            break
        levels += 1
    describe(f"Figure 2 recursion (k = 3 per level, {levels} levels)", plan)

    describe("Theorem 2 with eps = 1/2", plan_theorem2(epsilon=0.5, f_target=target))
    describe("Theorem 2 with eps = 1/4", plan_theorem2(epsilon=0.25, f_target=target))

    phases = 1
    while plan_theorem3(phases=phases).resilience() < target and phases < 4:
        phases += 1
    describe(f"Theorem 3 ({phases} phases)", plan_theorem3(phases=phases))

    print("Shape to notice: Theorem 2/3 keep the stabilisation bound linear in f and")
    print("the state bits polylogarithmic, whereas Corollary 1 trades time for")
    print("optimal resilience — exactly Table 1's comparison.")


if __name__ == "__main__":
    main()
