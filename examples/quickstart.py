"""Quickstart: build a self-stabilising Byzantine counter and watch it stabilise.

Two views of the same system:

1. the ``repro.scenarios`` facade — the one-chain way to run a whole
   campaign of adversarial simulations and summarise it, and
2. the trace-level API underneath, reproducing the example execution from
   the introduction of the paper: a network with Byzantine nodes and
   arbitrary initial states eventually has all correct nodes counting
   modulo ``c`` in agreement.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro import SimulationConfig, figure2_counter, run_simulation
from repro.network import PhaseKingSkewAdversary, random_faulty_set
from repro.network.stabilization import stabilization_round
from repro.scenarios import Scenario


def main(runs: int = 5, max_rounds: int = 4000, seed: int = 42) -> None:
    # Part 1 — the facade.  One chain describes the whole study: the
    # Figure 2 counter A(12, 3) counting modulo 3, attacked by the
    # phase-king-skew adversary controlling 3 Byzantine nodes, repeated
    # over independent fault sets and seeds.
    scenario = (
        Scenario.counter("figure2", levels=1, c=3)
        .adversary("phase-king-skew")
        .faults(3)
        .runs(runs)
        .max_rounds(max_rounds)
        .stop_after_agreement(12)
        .seed(seed)
    )
    report = scenario.execute()
    print(scenario.summarize(report).format_table())
    print()

    # Part 2 — the trace-level API, for when one run must be inspected
    # round by round (the table from the paper's introduction).
    counter = figure2_counter(levels=1, c=3)
    print("Counter:", counter.info.name)
    print(f"  nodes n = {counter.n}, resilience f = {counter.f}, modulus c = {counter.c}")
    print(f"  state bits per node  = {counter.state_bits()}")
    print(f"  stabilisation bound  = {counter.stabilization_bound()} rounds (Theorem 1)")
    print()

    faulty = random_faulty_set(counter.n, counter.f, rng=seed)
    print("Byzantine nodes:", sorted(faulty))
    trace = run_simulation(
        counter,
        adversary=PhaseKingSkewAdversary(faulty),
        config=SimulationConfig(
            max_rounds=max_rounds, stop_after_agreement=12, seed=seed
        ),
    )
    result = stabilization_round(trace)
    print(f"Stabilised: {result.stabilized} (round {result.round}, "
          f"bound {counter.stabilization_bound()})")
    print()

    first = max(0, (result.round or 0) - 3)
    print(trace.format_table(first=first, last=first + 12))


if __name__ == "__main__":
    main()
