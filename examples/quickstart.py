"""Quickstart: build a self-stabilising Byzantine counter and watch it stabilise.

This reproduces the example execution from the introduction of the paper:
a network with Byzantine nodes and arbitrary initial states eventually has
all correct nodes counting modulo ``c`` in agreement.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro import SimulationConfig, figure2_counter, run_simulation
from repro.network import PhaseKingSkewAdversary, random_faulty_set
from repro.network.stabilization import stabilization_round


def main() -> None:
    # Build the Figure 2 counter A(12, 3): 12 nodes, up to 3 Byzantine,
    # counting modulo 3, assembled by boosting the Corollary 1 base A(4, 1).
    counter = figure2_counter(levels=1, c=3)
    print("Counter:", counter.info.name)
    print(f"  nodes n = {counter.n}, resilience f = {counter.f}, modulus c = {counter.c}")
    print(f"  state bits per node  = {counter.state_bits()}")
    print(f"  stabilisation bound  = {counter.stabilization_bound()} rounds (Theorem 1)")
    print()

    # Pick 3 Byzantine nodes and an adversary that actively attacks the
    # phase king registers; initial states are drawn uniformly at random
    # (self-stabilisation must cope with any starting point).
    faulty = random_faulty_set(counter.n, counter.f, rng=42)
    adversary = PhaseKingSkewAdversary(faulty)
    print("Byzantine nodes:", sorted(faulty))

    trace = run_simulation(
        counter,
        adversary=adversary,
        config=SimulationConfig(max_rounds=4000, stop_after_agreement=12, seed=42),
    )

    result = stabilization_round(trace)
    print(f"Stabilised: {result.stabilized} (round {result.round}, "
          f"bound {counter.stabilization_bound()})")
    print()

    # Show the rounds around the stabilisation point, like the table in the
    # paper's introduction (faulty nodes behave arbitrarily).
    first = max(0, (result.round or 0) - 3)
    print(trace.format_table(first=first, last=first + 12))


if __name__ == "__main__":
    main()
