"""Fault-tolerant TDMA slot assignment driven by a synchronous counter.

The paper motivates synchronous counting with large integrated circuits:
subsystems share a clock signal but not round numbers, and a self-stabilising
Byzantine-tolerant counter lets them agree on "highly dependable round
numbers" to implement mutual exclusion and time-division multiple access
(TDMA).

This example models a chip with 12 subsystems sharing one bus.  Each
subsystem runs the ``A(12, 3)`` counter; the counter value modulo the number
of bus slots decides who may drive the bus.  Up to 3 subsystems are
Byzantine.  We verify that after stabilisation there is never more than one
*correct* subsystem driving the bus in a slot, and that every correct
subsystem gets its fair share of slots.

Run with::

    python examples/tdma_circuit.py
"""

from __future__ import annotations

from collections import Counter

from repro import SimulationConfig, figure2_counter, run_simulation
from repro.network import RandomStateAdversary, random_faulty_set
from repro.network.stabilization import stabilization_round

#: Number of TDMA slots on the shared bus (= counter modulus).
SLOTS = 6


def slot_owner(slot: int, correct_nodes: list[int]) -> int:
    """Static slot map: slot ``s`` belongs to node ``s mod 12``."""
    return slot % 12


def main(max_rounds: int = 4000, seed: int = 7) -> None:
    counter = figure2_counter(levels=1, c=SLOTS)
    faulty = random_faulty_set(counter.n, counter.f, rng=seed)
    print(f"TDMA bus with {SLOTS} slots, {counter.n} subsystems, Byzantine: {sorted(faulty)}")

    trace = run_simulation(
        counter,
        adversary=RandomStateAdversary(faulty),
        config=SimulationConfig(
            max_rounds=max_rounds, stop_after_agreement=2 * SLOTS, seed=seed
        ),
    )
    result = stabilization_round(trace)
    print(f"Counter stabilised at round {result.round} "
          f"(bound {counter.stabilization_bound()})")

    # After stabilisation, derive bus grants from the agreed counter value.
    correct = trace.correct_nodes
    collisions = 0
    grants: Counter = Counter()
    stable_rounds = trace.rounds[result.round :]
    for record in stable_rounds:
        # Every correct subsystem computes the slot locally from its own output.
        drivers = set()
        for node in correct:
            slot = record.outputs[node]
            owner = slot_owner(slot, correct)
            if owner == node:
                drivers.add(node)
        if len(drivers) > 1:
            collisions += 1
        for driver in drivers:
            grants[driver] += 1

    print(f"Rounds analysed after stabilisation : {len(stable_rounds)}")
    print(f"Bus collisions between correct nodes: {collisions}")
    print("Bus grants per correct subsystem    :",
          dict(sorted(grants.items())) or "(none owned a slot yet)")
    if collisions == 0:
        print("=> mutual exclusion holds: the counter gives dependable round numbers.")


if __name__ == "__main__":
    main()
