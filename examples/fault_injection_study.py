"""Fault-injection study: how different Byzantine strategies affect stabilisation.

Sweeps the library's adversary strategies and fault placements against the
``A(12, 3)`` counter and prints, per scenario, how long stabilisation took
compared with the Theorem 1 bound.  Also demonstrates the negative baseline:
a naive majority-following counter kept split forever by an adaptive
adversary.

Run with::

    python examples/fault_injection_study.py
"""

from __future__ import annotations

from repro import SimulationConfig, figure2_counter, run_simulation
from repro.counters import NaiveMajorityCounter
from repro.network import (
    AdaptiveSplitAdversary,
    CrashAdversary,
    MimicAdversary,
    PhaseKingSkewAdversary,
    RandomStateAdversary,
    SplitStateAdversary,
    block_concentrated_faults,
    random_faulty_set,
)
from repro.network.stabilization import stabilization_round

STRATEGIES = {
    "crash": CrashAdversary,
    "random-state": RandomStateAdversary,
    "split-state": SplitStateAdversary,
    "mimic": MimicAdversary,
    "phase-king-skew": PhaseKingSkewAdversary,
    "adaptive-split": AdaptiveSplitAdversary,
}


def main() -> None:
    counter = figure2_counter(levels=1, c=2)
    bound = counter.stabilization_bound()
    print(f"Counter A({counter.n}, {counter.f}), stabilisation bound {bound} rounds")
    print()
    print(f"{'scenario':<42} {'faults':<14} {'stabilised at':<14} within bound")
    print("-" * 86)

    scenarios = []
    for name, strategy in STRATEGIES.items():
        faulty = random_faulty_set(counter.n, counter.f, rng=hash(name) % 1000)
        scenarios.append((f"scattered faults / {name}", strategy, faulty))
    # The Figure 2 pattern: one whole block Byzantine.
    scenarios.append(
        (
            "whole block faulty / phase-king-skew",
            PhaseKingSkewAdversary,
            block_concentrated_faults(block_size=4, blocks=[2], per_block=3),
        )
    )

    for label, strategy, faulty in scenarios:
        trace = run_simulation(
            counter,
            adversary=strategy(faulty),
            config=SimulationConfig(max_rounds=bound, stop_after_agreement=16, seed=13),
        )
        result = stabilization_round(trace)
        round_text = str(result.round) if result.stabilized else "never"
        ok = result.stabilized and result.round <= bound
        print(f"{label:<42} {str(sorted(faulty)):<14} {round_text:<14} {ok}")

    print()
    print("Negative baseline: naive majority counter under the adaptive-split attack")
    naive = NaiveMajorityCounter(n=12, c=2, claimed_resilience=3)
    trace = run_simulation(
        naive,
        adversary=AdaptiveSplitAdversary(frozenset({9, 10, 11})),
        config=SimulationConfig(max_rounds=300, seed=1),
        initial_states=[0] * 5 + [1] * 4 + [0] * 3,
    )
    result = stabilization_round(trace, min_tail=16)
    print(f"  stabilised: {result.stabilized} after 300 rounds "
          "(the phase king layer of the real construction is what prevents this)")


if __name__ == "__main__":
    main()
