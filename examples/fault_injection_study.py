"""Fault-injection study: how different Byzantine strategies affect stabilisation.

Sweeps every registered adversary strategy against the ``A(12, 3)`` counter
through the ``repro.scenarios`` facade — the strategy names come from the
unified component registry, so a newly registered adversary automatically
joins the sweep.  Two hand-crafted cases follow: the Figure 2 fault pattern
(one whole block Byzantine) and the negative baseline, a naive
majority-following counter kept split forever by an adaptive adversary.

Run with::

    python examples/fault_injection_study.py
"""

from __future__ import annotations

from repro import SimulationConfig, figure2_counter, run_simulation
from repro.counters import NaiveMajorityCounter
from repro.network import (
    AdaptiveSplitAdversary,
    PhaseKingSkewAdversary,
    block_concentrated_faults,
)
from repro.network.stabilization import stabilization_round
from repro.scenarios import Scenario, default_component_registry


def main(runs: int = 2, seed: int = 13) -> None:
    counter = figure2_counter(levels=1, c=2)
    bound = counter.stabilization_bound()
    print(f"Counter A({counter.n}, {counter.f}), stabilisation bound {bound} rounds")
    print()

    # Every *active* strategy in the registry, with the maximal fault budget.
    strategies = [
        name
        for name in default_component_registry().names(kind="adversary")
        if name != "none"
    ]
    scenario = (
        Scenario.counter("figure2", levels=1, c=2)
        .adversary(*strategies)
        .faults("auto")
        .runs(runs)
        .max_rounds(bound)
        .stop_after_agreement(16)
        .seed(seed)
        .named("fault-injection-study")
    )
    report = scenario.execute()
    print(scenario.summarize(report).format_table())
    print()

    # The Figure 2 pattern: one whole block Byzantine.
    faulty = block_concentrated_faults(block_size=4, blocks=[2], per_block=3)
    trace = run_simulation(
        counter,
        adversary=PhaseKingSkewAdversary(faulty),
        config=SimulationConfig(max_rounds=bound, stop_after_agreement=16, seed=seed),
    )
    result = stabilization_round(trace)
    round_text = str(result.round) if result.stabilized else "never"
    ok = result.stabilized and result.round <= bound
    print(f"whole block faulty / phase-king-skew: faults {sorted(faulty)}, "
          f"stabilised at {round_text}, within bound: {ok}")

    print()
    print("Negative baseline: naive majority counter under the adaptive-split attack")
    naive = NaiveMajorityCounter(n=12, c=2, claimed_resilience=3)
    trace = run_simulation(
        naive,
        adversary=AdaptiveSplitAdversary(frozenset({9, 10, 11})),
        config=SimulationConfig(max_rounds=300, seed=1),
        initial_states=[0] * 5 + [1] * 4 + [0] * 3,
    )
    result = stabilization_round(trace, min_tail=16)
    print(f"  stabilised: {result.stabilized} after 300 rounds "
          "(the phase king layer of the real construction is what prevents this)")


if __name__ == "__main__":
    main()
