"""Pytest configuration for the benchmark harness.

The benchmark modules live in ``bench_*.py`` files (declared in
``pyproject.toml``'s ``python_files``); each function regenerates one of the
paper's tables/figures or times a library component, asserting the
qualitative claim recorded in EXPERIMENTS.md.
"""

from __future__ import annotations

import os
import sys

# Make the sibling helper module importable regardless of how pytest was invoked.
sys.path.insert(0, os.path.dirname(__file__))
