"""Component micro-benchmarks: the building blocks of the construction.

Not tied to a specific table/figure; they track the cost of the primitives
that dominate simulation time (boosted transition, majority voting, message
coercion, exhaustive verification) so performance regressions are visible.
"""

from __future__ import annotations

from repro.core.recursion import figure2_counter, optimal_resilience_counter
from repro.core.voting import majority
from repro.counters.trivial import TrivialCounter
from repro.util.rng import ensure_rng
from repro.verification.checker import verify_counter


def test_boosted_transition_a12(benchmark):
    counter = figure2_counter(levels=1, c=2)
    rng = ensure_rng(0)
    states = [counter.random_state(rng) for _ in range(counter.n)]

    result = benchmark(counter.transition, 5, states)
    assert counter.is_valid_state(result)


def test_boosted_transition_a4(benchmark):
    counter = optimal_resilience_counter(f=1, c=2)
    rng = ensure_rng(1)
    states = [counter.random_state(rng) for _ in range(counter.n)]

    result = benchmark(counter.transition, 2, states)
    assert counter.is_valid_state(result)


def test_message_coercion(benchmark):
    counter = figure2_counter(levels=1, c=2)
    forged = ("garbage", 7, 2)

    coerced = benchmark(counter.coerce_message, forged)
    assert counter.is_valid_state(coerced)


def test_majority_vote(benchmark):
    values = [3] * 20 + [1] * 16

    result = benchmark(majority, values, 0)
    assert result == 3


def test_exhaustive_verification_trivial(benchmark):
    counter = TrivialCounter(c=8)

    report = benchmark(verify_counter, counter)
    assert report.is_synchronous_counter
    assert report.stabilization_time == 0
