"""Adversary hot-path benchmarks: per-round caching vs per-forge rescans.

``forge()`` is called once per (faulty sender, correct receiver) pair —
O(f·n) times per round — so any work inside it that only depends on the
round's states is multiplied by the whole grid.  The optimised
:class:`MimicAdversary`, :class:`PhaseKingSkewAdversary` and
:class:`AdaptiveSplitAdversary` hoist the sorted node list / output index
into ``on_round_start``; the ``Legacy*`` classes below preserve the previous
per-forge implementations (re-sort / re-scan the full states mapping on
every call, O(n² log n) per round) as the "before" baseline.

Each pair of benchmarks drives the same seeded simulation, and the traces
are asserted identical — the caches change wall-clock time, never messages
(the same property ``tests/network/test_adversary.py`` pins).
"""

from __future__ import annotations

from collections import Counter

from repro.core.boosting import BoostedState
from repro.core.phase_king import INFINITY
from repro.counters.naive import NaiveMajorityCounter
from repro.network.adversary import (
    AdaptiveSplitAdversary,
    MimicAdversary,
    PhaseKingSkewAdversary,
)
from repro.network.simulator import SimulationConfig, run_simulation

N = 96
FAULTY = tuple(range(N - 31, N))  # f = 31 < n/3
ROUNDS = 25


class LegacyMimicAdversary(MimicAdversary):
    """Pre-optimisation forge: sorts the states mapping on every call."""

    def on_round_start(self, round_index, states, algorithm, rng):
        pass

    def forge(self, round_index, sender, receiver, states, algorithm, rng):
        correct = sorted(states)
        if not correct:
            return algorithm.default_state()
        victim = correct[(receiver + round_index) % len(correct)]
        return states[victim]


class LegacyPhaseKingSkewAdversary(PhaseKingSkewAdversary):
    """Pre-optimisation forge: sorts the states mapping on every call."""

    def on_round_start(self, round_index, states, algorithm, rng):
        pass

    def forge(self, round_index, sender, receiver, states, algorithm, rng):
        correct = sorted(states)
        if not correct:
            return algorithm.default_state()
        victim_state = states[correct[receiver % len(correct)]]
        if isinstance(victim_state, BoostedState):
            if receiver % 2 == 0:
                skewed_a = (
                    (victim_state.a + self._offset) % algorithm.c
                    if victim_state.a != INFINITY
                    else 0
                )
            else:
                skewed_a = INFINITY
            return BoostedState(inner=victim_state.inner, a=skewed_a, d=rng.randrange(2))
        return algorithm.random_state(rng)


class LegacyAdaptiveSplitAdversary(AdaptiveSplitAdversary):
    """Pre-optimisation version: scans all states' outputs on every forge."""

    def on_round_start(self, round_index, states, algorithm, rng):
        outputs = [
            algorithm.output(node, state) for node, state in sorted(states.items())
        ]
        counts = Counter(outputs).most_common(2)
        if len(counts) >= 2:
            self._camps = (counts[0][0], counts[1][0])
        elif counts:
            value = counts[0][0]
            self._camps = (value, (value + 1) % algorithm.c)
        else:
            self._camps = (0, 1 % algorithm.c)

    def forge(self, round_index, sender, receiver, states, algorithm, rng):
        receiver_state = states.get(receiver)
        if receiver_state is None:
            target = self._camps[receiver % 2]
        else:
            receiver_output = algorithm.output(receiver, receiver_state)
            target = (
                self._camps[1] if receiver_output == self._camps[0] else self._camps[0]
            )
        for node, state in states.items():
            if algorithm.output(node, state) == target:
                return state
        if isinstance(algorithm.default_state(), int):
            return target
        candidate = algorithm.random_state(rng)
        if isinstance(candidate, BoostedState):
            return BoostedState(inner=candidate.inner, a=target % algorithm.c, d=1)
        return candidate


def _simulate(adversary_cls):
    counter = NaiveMajorityCounter(n=N, c=8, claimed_resilience=len(FAULTY))
    return run_simulation(
        counter,
        adversary=adversary_cls(FAULTY),
        config=SimulationConfig(max_rounds=ROUNDS, seed=0),
    )


def _bench_pair(benchmark, optimized_cls, legacy_cls):
    """Benchmark the optimised adversary; assert parity with the legacy one."""
    optimized = benchmark(_simulate, optimized_cls)
    legacy = _simulate(legacy_cls)
    assert optimized.rounds == legacy.rounds


def test_mimic_cached(benchmark):
    _bench_pair(benchmark, MimicAdversary, LegacyMimicAdversary)


def test_mimic_legacy_rescan(benchmark):
    benchmark(_simulate, LegacyMimicAdversary)


def test_phase_king_skew_cached(benchmark):
    _bench_pair(benchmark, PhaseKingSkewAdversary, LegacyPhaseKingSkewAdversary)


def test_phase_king_skew_legacy_rescan(benchmark):
    benchmark(_simulate, LegacyPhaseKingSkewAdversary)


def test_adaptive_split_cached(benchmark):
    _bench_pair(benchmark, AdaptiveSplitAdversary, LegacyAdaptiveSplitAdversary)


def test_adaptive_split_legacy_rescan(benchmark):
    benchmark(_simulate, LegacyAdaptiveSplitAdversary)
