"""Benchmark E2 — Table 2: the phase king instruction sets (Lemmas 4 and 5).

Times the behavioural verification of the instruction sets across a sweep of
``(N, F)`` and asserts both lemmas hold in every trial, plus the classic
phase king substrate reaching agreement in ``3(F+1)`` rounds.
"""

from __future__ import annotations

from _bench_utils import run_once

from repro.core.phase_king import PhaseKingRegisters, phase_king_step
from repro.experiments.table2_phase_king import run_table2


def test_table2_lemma_checks(benchmark):
    result = run_once(
        benchmark, run_table2, settings=((4, 1), (7, 2), (10, 3)), trials=20, seed=0
    )
    for row in result.rows:
        trials = row["lemma4_agreement"].split("/")[1]
        assert row["lemma4_agreement"] == f"{trials}/{trials}"
        assert row["lemma5_persistence"] == f"{trials}/{trials}"
        assert row["classic_agreed"] is True
        assert row["classic_rounds"] == 3 * (row["F"] + 1)


def test_phase_king_step_throughput(benchmark):
    """Micro-benchmark: a single instruction-set execution for N = 36 nodes."""
    registers = PhaseKingRegisters(a=3, d=1)
    received = [3] * 30 + [0, 1, 2, -1, 4, 3]

    def step():
        return phase_king_step(registers, received, round_value=4, N=36, F=7, C=8)

    updated = benchmark(step)
    assert updated.a == 4
