"""Benchmarks E9–E10 — the pulling model (Theorem 4, Corollaries 4 and 5).

Regenerates the communication/reliability trade-off of the sampled
construction and the pseudo-random fixed-link variant, asserting the shapes
recorded in EXPERIMENTS.md: per-round pulls grow linearly in the sample size
``M`` (``n + kM + M + F + 2``) and stay far below a full broadcast for large
networks, the post-agreement failure rate drops as ``M`` grows, and the
pseudo-random variant stabilises for (almost) every link seed against an
oblivious adversary and then counts deterministically.
"""

from __future__ import annotations

from _bench_utils import run_once

from repro.experiments.pulling import run_corollary4, run_corollary5


def test_corollary4_pull_complexity(benchmark):
    result = run_once(
        benchmark,
        run_corollary4,
        sample_sizes=(2, 8, 16),
        trials=2,
        max_rounds=200,
        seed=0,
    )
    data_rows = [row for row in result.rows if isinstance(row["M"], int)]
    pulls = [row["pulls_per_round"] for row in data_rows]
    failures = [row["failure_rate_f1"] for row in data_rows]
    # Pull counts follow the n + k*M + M + (F+2) formula (linear in M).
    assert pulls == [4 + 3 * M + M + 5 for M in (2, 8, 16)]
    assert all(row["measured_max_pulls"] == row["pulls_per_round"] for row in data_rows)
    # Reliability improves with the sample size (the Lemma 8 Chernoff shape).
    assert failures[0] > failures[-1]


def test_corollary5_oblivious_adversary(benchmark):
    result = run_once(
        benchmark,
        run_corollary5,
        link_seeds=(0, 1, 2, 3),
        sample_size=6,
        max_rounds=250,
        confirm_rounds=50,
        seed=0,
    )
    data_rows = [row for row in result.rows if isinstance(row["link_seed"], int)]
    stabilized = [row for row in data_rows if row["stabilized"]]
    # Corollary 5: all but a vanishing fraction of link seeds stabilise; at
    # this scale we require a strict majority of seeds to stabilise and to
    # then keep counting correctly for the whole confirmation window.
    assert len(stabilized) >= len(data_rows) // 2 + 1
    assert all(row["tail_rounds"] >= 50 for row in stabilized)
