"""Benchmark E3 — Figure 1: leader pointer coincidence (Lemmas 1 and 2).

Regenerates the pointer traces of three stabilised blocks with base
``2m = 6`` (as drawn in the figure) and asserts that every candidate leader
is pointed at by all blocks simultaneously for at least ``τ`` rounds within
the ``c_{k-1}`` bound.
"""

from __future__ import annotations

from _bench_utils import run_once

from repro.core.blocks import CounterInterpretation, ideal_pointer_trace
from repro.experiments.figure1 import run_figure1


def test_figure1_common_intervals(benchmark):
    result = run_once(benchmark, run_figure1, k=6, resilience=1, seed=0)
    assert len(result.rows) == 3
    for row in result.rows:
        assert row["within_bound"] is True
        assert row["interval_length"] >= row["required_length"]


def test_pointer_trace_generation_throughput(benchmark):
    """Micro-benchmark: generating one full-period pointer trace."""
    interp = CounterInterpretation(k=6, F=1)

    def generate():
        return ideal_pointer_trace(interp, 2, 17, interp.block_period(2))

    trace = benchmark(generate)
    assert len(trace) == interp.block_period(2)
