"""Benchmarks E5–E8 — Theorem 1 bounds, Corollary 1, Theorem 2 and Theorem 3 scaling.

Each benchmark regenerates one of the quantitative claims of Sections 3–4
and asserts the shape recorded in EXPERIMENTS.md: measured stabilisation
below the exact Theorem 1 bound, the ``f^{O(f)}`` blow-up of Corollary 1,
the ``n/f <= 8 f^ε`` ratio of Theorem 2 and the converging time/resilience
ratio plus sub-``log² f`` state bits of Theorem 3.
"""

from __future__ import annotations

import math

from _bench_utils import run_once

from repro.core.recursion import plan_corollary1, plan_theorem2, plan_theorem3
from repro.experiments.scaling import (
    run_corollary1_scaling,
    run_theorem1_bounds,
    run_theorem2_scaling,
    run_theorem3_scaling,
)


def test_theorem1_bounds(benchmark):
    result = run_once(benchmark, run_theorem1_bounds, k_values=(4,), trials=3, seed=0)
    for row in result.rows:
        assert row["formula_matches"] is True
        assert row["within_bound"] is True
        assert row["measured_max"] <= row["time_bound"]


def test_corollary1_scaling(benchmark):
    result = run_once(
        benchmark, run_corollary1_scaling, f_values=(1, 2, 4, 8), measured_trials=3, seed=0
    )
    times = [row["time_bound"] for row in result.rows]
    bits = [row["state_bits"] for row in result.rows]
    # f^{O(f)} time, O(f log f) space.
    assert all(later >= 1000 * earlier for earlier, later in zip(times, times[1:]))
    assert all(later > earlier for earlier, later in zip(bits, bits[1:]))
    assert result.rows[0]["within_bound"] is True


def test_theorem2_scaling(benchmark):
    result = run_once(
        benchmark,
        run_theorem2_scaling,
        epsilons=(0.5, 1.0 / 3.0),
        f_targets=(4, 64, 1024, 2**16),
    )
    assert all(row["ratio_ok"] for row in result.rows)
    # For a fixed epsilon the time/f ratio stays bounded (linear stabilisation).
    for epsilon in (0.5, round(1.0 / 3.0, 3)):
        ratios = [row["time_over_f"] for row in result.rows if row["epsilon"] == epsilon]
        assert max(ratios) <= 4 * ratios[0]


def test_theorem3_scaling(benchmark):
    result = run_once(benchmark, run_theorem3_scaling, phases=(1, 2, 3))
    epsilons = [row["effective_epsilon"] for row in result.rows]
    assert all(later < earlier for earlier, later in zip(epsilons, epsilons[1:]))
    assert all(row["bits_within_envelope"] for row in result.rows)


def test_plan_evaluation_throughput(benchmark):
    """Micro-benchmark: evaluating the exact Theorem 2/3 schedules for large f."""

    def evaluate():
        a = plan_theorem2(epsilon=0.25, f_target=2**20, c=2)
        b = plan_theorem3(phases=3, c=2)
        c = plan_corollary1(f=16, c=2)
        return a.state_bits_bound() + b.state_bits_bound() + c.state_bits_bound()

    total_bits = benchmark(evaluate)
    assert total_bits > 0


def test_space_advantage_of_theorem3_over_corollary1(benchmark):
    """The exponential space improvement highlighted in the abstract."""

    def compare():
        f = plan_theorem3(phases=2, c=2).resilience()
        theorem3_bits = plan_theorem3(phases=2, c=2).state_bits_bound()
        # Corollary 1 at the same resilience would need Ω(f log f) bits;
        # evaluate the closed form instead of building the gigantic plan.
        corollary1_bits = f * math.log2(f)
        return f, theorem3_bits, corollary1_bits

    f, theorem3_bits, corollary1_bits = benchmark(compare)
    assert theorem3_bits < corollary1_bits / 1e6
    assert theorem3_bits <= 40 * math.log2(f) ** 2
