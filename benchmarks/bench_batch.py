"""Scalar-vs-batch engine benchmarks: whole campaigns as array programs.

The cases below are shared with ``scripts/run_benchmarks.py`` (which times
both engines and emits the machine-readable ``BENCH_batch.json`` tracked
across PRs).  The pytest-benchmark entry points time the batch path and — for
the headline Figure-1-style case — assert the ≥10x per-campaign speedup the
vectorised engine exists for.

Case catalogue:

* ``figure1-style-randomized-n16`` — the acceptance workload: the randomised
  follow-the-majority counter on ``n = 16`` nodes under the random-state
  adversary, 200 trials.  Randomised, so it runs under ``engine="batch"``
  (statistical equivalence).
* ``naive-majority-n24-mimic`` — a deterministic n = 24 grid whose batch
  results are asserted bit-identical to the scalar engine.
* ``figure2-A12-crash`` — the real Theorem 1 construction ``A(12, 3)``:
  recursive inner counters, leader votes and the phase king, all vectorised.
* ``pseudo-random-boosted-pulling`` — the Corollary 5 pulling-model counter
  (fixed pull plans, bit-identical batch execution).
* ``fixed-state-corollary1`` — the fixed-state adversary kernel
  (deterministic, bit-identical) on the Corollary 1 construction.
* ``phase-king-skew-figure2`` — the targeted phase-king register attack on
  ``A(12, 3)``; draws NumPy randomness, so it runs under ``engine="batch"``.
* ``adaptive-split-naive-n24`` — the adaptive majority-splitting attack on
  the flat n = 24 baseline, where its kernel is deterministic and the batch
  results are asserted bit-identical.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, replace

from repro.campaigns.batching import BatchExecutor
from repro.campaigns.executor import SerialExecutor
from repro.campaigns.spec import AlgorithmSpec, CampaignSpec

__all__ = ["BatchBenchCase", "BENCH_CASES", "run_case", "time_engines"]


@dataclass(frozen=True)
class BatchBenchCase:
    """One scalar-vs-batch comparison: a campaign plus its batch mode."""

    name: str
    spec: CampaignSpec
    #: Engine for the vectorised run: "auto" for deterministic cases (the
    #: executor must prove bit-identity), "batch" for randomised ones.
    engine: str
    #: Whether scalar and batch results must be byte-identical.
    deterministic: bool
    #: Trial count used by the CI quick mode.
    quick_runs: int = 20


def _case_spec(**kwargs) -> CampaignSpec:
    return CampaignSpec(**{"seed": 0, "engine": "scalar", **kwargs})


BENCH_CASES: tuple[BatchBenchCase, ...] = (
    BatchBenchCase(
        name="figure1-style-randomized-n16",
        spec=_case_spec(
            name="figure1-style-randomized-n16",
            algorithms=(
                AlgorithmSpec.create(
                    "randomized-follow-majority", {"n": 16, "f": 5, "c": 2}
                ),
            ),
            adversaries=("random-state",),
            num_faults=(5,),
            runs_per_setting=200,
            max_rounds=300,
            stop_after_agreement=10,
        ),
        engine="batch",
        deterministic=False,
    ),
    BatchBenchCase(
        name="naive-majority-n24-mimic",
        spec=_case_spec(
            name="naive-majority-n24-mimic",
            algorithms=(
                AlgorithmSpec.create(
                    "naive-majority", {"n": 24, "c": 4, "claimed_resilience": 2}
                ),
            ),
            adversaries=("mimic",),
            num_faults=(2,),
            runs_per_setting=200,
            max_rounds=120,
            stop_after_agreement=8,
        ),
        engine="auto",
        deterministic=True,
    ),
    BatchBenchCase(
        name="figure2-A12-crash",
        spec=_case_spec(
            name="figure2-A12-crash",
            algorithms=(AlgorithmSpec.create("figure2", {"levels": 1, "c": 2}),),
            adversaries=("crash",),
            runs_per_setting=100,
            max_rounds=250,
            stop_after_agreement=10,
        ),
        engine="auto",
        deterministic=True,
    ),
    BatchBenchCase(
        name="pseudo-random-boosted-pulling",
        spec=_case_spec(
            name="pseudo-random-boosted-pulling",
            model="pulling",
            algorithms=(
                AlgorithmSpec.create("pseudo-random-boosted", {"sample_size": 3}),
            ),
            adversaries=("crash",),
            num_faults=(1,),
            runs_per_setting=100,
            max_rounds=60,
            stop_after_agreement=6,
        ),
        engine="auto",
        deterministic=True,
    ),
    BatchBenchCase(
        name="fixed-state-corollary1",
        spec=_case_spec(
            name="fixed-state-corollary1",
            algorithms=(AlgorithmSpec.create("corollary1", {"f": 1, "c": 2}),),
            adversaries=("fixed-state",),
            num_faults=(1,),
            runs_per_setting=200,
            max_rounds=250,
            stop_after_agreement=10,
        ),
        engine="auto",
        deterministic=True,
    ),
    BatchBenchCase(
        name="phase-king-skew-figure2",
        spec=_case_spec(
            name="phase-king-skew-figure2",
            algorithms=(AlgorithmSpec.create("figure2", {"levels": 1, "c": 2}),),
            adversaries=("phase-king-skew",),
            runs_per_setting=100,
            max_rounds=250,
            stop_after_agreement=10,
        ),
        engine="batch",
        deterministic=False,
    ),
    BatchBenchCase(
        name="adaptive-split-naive-n24",
        spec=_case_spec(
            name="adaptive-split-naive-n24",
            algorithms=(
                AlgorithmSpec.create(
                    "naive-majority", {"n": 24, "c": 4, "claimed_resilience": 2}
                ),
            ),
            adversaries=("adaptive-split",),
            num_faults=(2,),
            runs_per_setting=200,
            max_rounds=120,
            stop_after_agreement=8,
        ),
        engine="auto",
        deterministic=True,
    ),
)


def scaled(case: BatchBenchCase, runs: int | None) -> BatchBenchCase:
    """The case with its per-setting trial count overridden (quick mode)."""
    if runs is None:
        return case
    return replace(case, spec=replace(case.spec, runs_per_setting=runs))


def run_case(case: BatchBenchCase, engine: str):
    """Execute one case on one engine; returns (elapsed, cpu, results, stats).

    ``elapsed`` is wall-clock and ``cpu`` is process CPU time
    (:func:`time.process_time`) over the same window — on the serial
    executors the two track each other, but the CPU column survives noisy
    shared runners where wall-clock lies.
    """
    runs = case.spec.expand()
    if engine == "scalar":
        executor = SerialExecutor()
    else:
        executor = BatchExecutor(engine=engine)
    started = time.perf_counter()
    cpu_started = time.process_time()
    results = executor.run(runs)
    cpu = time.process_time() - cpu_started
    elapsed = time.perf_counter() - started
    return elapsed, cpu, results, executor.stats


def time_engines(case: BatchBenchCase) -> dict:
    """Scalar-vs-batch comparison of one case (with a batch warm-up).

    The warm-up run keeps one-time costs (NumPy submodule imports, kernel
    construction) out of the timing, mirroring a long campaign where they
    amortise to nothing.
    """
    warmup = scaled(case, 2)
    run_case(warmup, case.engine)
    scalar_elapsed, scalar_cpu, scalar_results, _ = run_case(case, "scalar")
    batch_elapsed, batch_cpu, batch_results, batch_stats = run_case(
        case, case.engine
    )
    identical = None
    if case.deterministic:
        identical = [r.to_json() for r in scalar_results] == [
            r.to_json() for r in batch_results
        ]
    scalar_rounds = sum(r.rounds_simulated for r in scalar_results)
    batch_rounds = sum(r.rounds_simulated for r in batch_results)
    return {
        "case": case.name,
        "engine": case.engine,
        "runs": len(batch_results),
        "deterministic": case.deterministic,
        "identical_results": identical,
        "scalar_seconds": scalar_elapsed,
        "batch_seconds": batch_elapsed,
        "scalar_cpu_seconds": scalar_cpu,
        "batch_cpu_seconds": batch_cpu,
        "speedup": scalar_elapsed / batch_elapsed if batch_elapsed else None,
        "scalar_rounds_per_second": scalar_rounds / scalar_elapsed,
        "batch_rounds_per_second": batch_rounds / batch_elapsed,
        "batched_runs": batch_stats.batched,
        "fallback_runs": batch_stats.fallback,
        "failed_runs": batch_stats.failed,
    }


# ---------------------------------------------------------------------- #
# pytest-benchmark entry points
# ---------------------------------------------------------------------- #


def _case(name: str) -> BatchBenchCase:
    return next(case for case in BENCH_CASES if case.name == name)


def test_batch_engine_figure1_style_speedup(benchmark):
    """The acceptance criterion: >= 10x on n = 16, 200 trials."""
    case = _case("figure1-style-randomized-n16")
    comparison = benchmark.pedantic(
        time_engines, args=(case,), rounds=1, iterations=1
    )
    assert comparison["batched_runs"] == comparison["runs"]
    assert comparison["fallback_runs"] == 0
    assert comparison["speedup"] >= 10.0, comparison


def test_batch_engine_deterministic_cases_bit_identical(benchmark):
    """Deterministic cases: vectorised, faster, and byte-identical."""

    def run_all():
        return [
            time_engines(case) for case in BENCH_CASES if case.deterministic
        ]

    comparisons = benchmark.pedantic(run_all, rounds=1, iterations=1)
    for comparison in comparisons:
        assert comparison["identical_results"] is True, comparison
        assert comparison["fallback_runs"] == 0, comparison
        assert comparison["speedup"] > 1.0, comparison
