"""Helpers shared by the benchmark modules."""

from __future__ import annotations

__all__ = ["run_once"]


def run_once(benchmark, function, *args, **kwargs):
    """Execute ``function`` exactly once under the benchmark timer.

    The end-to-end experiment regenerations are too heavy for pytest-benchmark's
    automatic calibration; a single timed execution is what we want to record.
    """
    return benchmark.pedantic(function, args=args, kwargs=kwargs, rounds=1, iterations=1)
