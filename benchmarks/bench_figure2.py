"""Benchmark E4 — Figure 2: the recursive k = 3 construction.

Benchmarks one full adversarial stabilisation of the ``A(12, 3)`` counter
(one level of recursion over the Corollary 1 base ``A(4, 1)``) and the
construction of the two-level ``A(36, 7)`` stack, asserting the Theorem 1
bounds that the figure illustrates.
"""

from __future__ import annotations

from _bench_utils import run_once

from repro.analysis.metrics import trial_metrics
from repro.core.recursion import figure2_counter, plan_figure2
from repro.network.adversary import PhaseKingSkewAdversary, random_faulty_set
from repro.network.simulator import SimulationConfig, run_simulation


def test_figure2_a12_stabilization(benchmark):
    counter = figure2_counter(levels=1, c=2)
    faulty = random_faulty_set(counter.n, counter.f, rng=1)

    def run_trial():
        return run_simulation(
            counter,
            adversary=PhaseKingSkewAdversary(faulty),
            config=SimulationConfig(
                max_rounds=counter.stabilization_bound(),
                stop_after_agreement=16,
                seed=1,
            ),
        )

    trace = run_once(benchmark, run_trial)
    metrics = trial_metrics(trace, bound=counter.stabilization_bound())
    assert metrics.stabilized
    assert metrics.within_bound


def test_figure2_construction_bounds(benchmark):
    """Planning and instantiating the full A(4,1) -> A(12,3) -> A(36,7) stack."""

    def build():
        plan = plan_figure2(levels=2, c=2)
        counter = plan.instantiate()
        return plan, counter

    plan, counter = benchmark(build)
    assert (counter.n, counter.f) == (36, 7)
    assert counter.stabilization_bound() == plan.stabilization_bound() == 2304 + 960 + 1728
    assert counter.state_bits() == plan.state_bits_bound()


def test_figure2_a36_round_throughput(benchmark):
    """Per-round cost of the 36-node, 7-resilient counter under attack."""
    from repro.network.simulator import run_round
    from repro.util.rng import ensure_rng

    counter = figure2_counter(levels=2, c=2)
    faulty = random_faulty_set(counter.n, counter.f, rng=3)
    adversary = PhaseKingSkewAdversary(faulty)
    rng = ensure_rng(3)
    states = {
        node: counter.random_state(rng)
        for node in range(counter.n)
        if node not in faulty
    }

    def one_round():
        return run_round(counter, states, adversary, 0, rng)

    new_states = benchmark(one_round)
    assert len(new_states) == counter.n - len(faulty)
