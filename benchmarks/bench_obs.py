"""Observability overhead benchmark: the NullObserver must be free.

The instrumentation contract (see ``repro.obs``) is that the default
``observer=None`` / :data:`~repro.obs.NULL_OBSERVER` configuration costs
nothing on the batch hot path: :func:`~repro.obs.active` normalises both to
``None``, so every guard the instrumentation added collapses to one
``is not None`` check per block.  :func:`measure_null_overhead` verifies
that empirically by interleaved min-of-N timing of
:func:`repro.network.batch.run_batch_summaries` with ``observer=None``
versus ``observer=NULL_OBSERVER`` on the headline Figure-1-style workload.

Timing ratios on shared CI runners are noisy, so the measurement

* interleaves the two arms (thermal / frequency drift hits both equally),
* keeps the *minimum* wall-clock per arm across repeats (the minimum is
  the least-noise estimator for a deterministic workload), and
* retries the whole comparison a few times, keeping the best attempt —
  instrumentation overhead cannot be negative, so noise only ever
  inflates the ratio and the smallest observed value is the truest.

A third, informational arm times a *live* metrics-only observer so the
report also shows what turning observation on actually costs.

Usage::

    PYTHONPATH=src:benchmarks python -c \
        "from bench_obs import measure_null_overhead; \
         print(measure_null_overhead())"
    PYTHONPATH=src python scripts/run_benchmarks.py --max-null-overhead 2
"""

from __future__ import annotations

import random
import time
from typing import Any

from repro.counters.registry import default_registry
from repro.network.batch import (
    BatchTrial,
    build_batch_kernel,
    run_batch_summaries,
)
from repro.obs import NULL_OBSERVER, MetricsRegistry, Observer

__all__ = ["build_null_overhead_workload", "measure_null_overhead"]


def build_null_overhead_workload(runs: int = 120) -> dict[str, Any]:
    """The headline batch workload as ``run_batch_summaries`` arguments.

    The randomised follow-the-majority counter on ``n = 16`` under the
    random-state adversary — the same configuration as the
    ``figure1-style-randomized-n16`` benchmark case, i.e. the hot path the
    <2% overhead budget is defined against.
    """
    algorithm = default_registry().build(
        "randomized-follow-majority", n=16, f=5, c=2
    )
    kernel = build_batch_kernel(algorithm)
    if kernel is None:  # pragma: no cover - registry regression guard
        raise RuntimeError("randomized-follow-majority lost its batch kernel")
    rng = random.Random(20150721)
    trials = [
        BatchTrial(
            sim_seed=rng.randrange(2**31),
            faulty=tuple(sorted(rng.sample(range(16), 5))),
        )
        for _ in range(runs)
    ]
    return {
        "algorithm": algorithm,
        "kernel": kernel,
        "trials": trials,
        "kwargs": {
            "adversary_strategy": "random-state",
            "max_rounds": 300,
            "stop_after_agreement": 10,
        },
    }


def _time_arm(workload: dict[str, Any], observer: Any) -> float:
    started = time.perf_counter()
    run_batch_summaries(
        workload["algorithm"],
        workload["kernel"],
        workload["trials"],
        observer=observer,
        **workload["kwargs"],
    )
    return time.perf_counter() - started


def measure_null_overhead(
    *,
    runs: int = 120,
    repeats: int = 5,
    attempts: int = 3,
    threshold: float = 0.02,
) -> dict[str, Any]:
    """Measure the NullObserver's batch-hot-path overhead.

    Returns a dict with the per-arm minimum wall-clock seconds, the
    ``overhead`` fraction (``null / baseline - 1``), the informational
    ``observed_overhead`` of a live metrics-only observer, and
    ``within_threshold``.  Keeps the best of ``attempts`` comparisons —
    see the module docstring for why that is the honest estimator.
    """
    workload = build_null_overhead_workload(runs)
    # One warm-up pass keeps one-time costs (NumPy imports, kernel JIT-ish
    # caches) out of both arms.
    _time_arm(workload, None)
    best: dict[str, Any] | None = None
    for attempt in range(1, attempts + 1):
        baseline = null = observed = float("inf")
        for _ in range(repeats):
            baseline = min(baseline, _time_arm(workload, None))
            null = min(null, _time_arm(workload, NULL_OBSERVER))
            live = Observer(metrics=MetricsRegistry(), round_stride=0)
            observed = min(observed, _time_arm(workload, live))
        result = {
            "workload": "figure1-style-randomized-n16",
            "runs": runs,
            "repeats": repeats,
            "attempt": attempt,
            "baseline_seconds": baseline,
            "null_seconds": null,
            "observed_seconds": observed,
            "overhead": null / baseline - 1.0,
            "observed_overhead": observed / baseline - 1.0,
        }
        if best is None or result["overhead"] < best["overhead"]:
            best = result
        if best["overhead"] <= threshold:
            break
    assert best is not None
    best["threshold"] = threshold
    best["within_threshold"] = best["overhead"] <= threshold
    return best


# ---------------------------------------------------------------------- #
# pytest-benchmark entry point
# ---------------------------------------------------------------------- #


def test_null_observer_overhead(benchmark):
    """The instrumentation budget: NullObserver within 2% of no observer."""
    report = benchmark.pedantic(
        measure_null_overhead,
        kwargs={"runs": 60, "repeats": 3, "attempts": 4},
        rounds=1,
        iterations=1,
    )
    assert report["within_threshold"], report
