"""Benchmark E11 — ablations over the construction's design choices.

Covers the block count ``k`` (resilience vs time-overhead trade-off), the
output counter size ``C`` (space only), and the adversary strategy sweep
(the boosted counter survives all strategies, the naive baseline does not).
"""

from __future__ import annotations

from _bench_utils import run_once

from repro.experiments.ablation import (
    run_adversary_ablation,
    run_block_count_ablation,
    run_counter_size_ablation,
)


def test_block_count_ablation(benchmark):
    result = run_once(benchmark, run_block_count_ablation, k_values=(3, 4, 5, 6, 8))
    rows = [row for row in result.rows if "time_overhead" in row]
    overheads = [row["time_overhead"] for row in rows]
    ratios = [row["resilience_per_node"] for row in rows]
    # More blocks buy resilience density but the time overhead explodes.
    assert overheads == sorted(overheads)
    assert ratios[-1] >= ratios[0]


def test_counter_size_ablation(benchmark):
    result = run_once(benchmark, run_counter_size_ablation, counter_sizes=(2, 8, 1024))
    times = {row["time_bound"] for row in result.rows}
    bits = [row["state_bits"] for row in result.rows]
    assert len(times) == 1  # C does not affect the stabilisation bound
    assert bits == sorted(bits) and bits[0] < bits[-1]


def test_adversary_ablation(benchmark):
    result = run_once(
        benchmark,
        run_adversary_ablation,
        trials=3,
        max_rounds=3500,
        seed=0,
        strategies=("crash", "random-state", "phase-king-skew", "adaptive-split"),
    )
    boosted_rows = [row for row in result.rows if row["algorithm"].startswith("A(12,3)")]
    naive_rows = [row for row in result.rows if row["algorithm"].startswith("naive")]
    assert all(row["within_bound"] is True for row in boosted_rows)
    assert all(row["stabilized"].split("/")[0] == row["stabilized"].split("/")[1] for row in boosted_rows)
    assert naive_rows[0]["stabilized"] == "0/1"
