"""Campaign-engine benchmarks: the ``run_round`` fast path and executor throughput.

Two families:

* ``run_round`` micro-benchmarks — the broadcast inner loop with and without
  faults.  The fault-free case exercises the shared-message-vector fast path
  (the vector is built once per round instead of once per receiver); the
  faulty case still shares the correct-sender prefix and patches only the
  forged entries.
* Campaign throughput — the same fixed 48-run campaign through the serial
  and the multiprocessing executor.  Per-run results are asserted identical,
  so the timings compare pure orchestration overhead.
"""

from __future__ import annotations

import random

from _bench_utils import run_once

from repro.campaigns.executor import ParallelExecutor, SerialExecutor
from repro.campaigns.runner import run_campaign
from repro.campaigns.spec import AlgorithmSpec, CampaignSpec
from repro.counters.naive import NaiveMajorityCounter
from repro.network.adversary import CrashAdversary, NoAdversary
from repro.network.simulator import run_round


def _fault_free_setting(n: int = 64, c: int = 8):
    counter = NaiveMajorityCounter(n=n, c=c)
    states = {node: node % c for node in range(n)}
    return counter, states


def test_run_round_fault_free_fast_path(benchmark):
    """Zero faults: one shared message vector serves every receiver."""
    counter, states = _fault_free_setting()
    result = benchmark(run_round, counter, states, NoAdversary(), 0, None)
    assert set(result) == set(states)


def test_run_round_with_faults(benchmark):
    """With faults only the forged entries are patched per receiver."""
    n, c, f = 64, 8, 21
    counter = NaiveMajorityCounter(n=n, c=c, claimed_resilience=f)
    adversary = CrashAdversary(range(n - f, n))
    states = {node: node % c for node in range(n - f)}
    rng = random.Random(0)
    result = benchmark(run_round, counter, states, adversary, 0, rng)
    assert set(result) == set(states)


def _throughput_campaign() -> CampaignSpec:
    return CampaignSpec(
        name="bench-throughput",
        algorithms=(
            AlgorithmSpec.create(
                "naive-majority", {"n": 16, "c": 4, "claimed_resilience": 5}
            ),
        ),
        adversaries=("crash", "random-state"),
        runs_per_setting=24,
        seed=7,
        max_rounds=120,
        stop_after_agreement=None,
    )


def test_campaign_serial_throughput(benchmark):
    report = run_once(
        benchmark, run_campaign, _throughput_campaign(), executor=SerialExecutor()
    )
    assert report.total == 48
    assert report.failed == 0


def test_campaign_parallel_throughput(benchmark):
    """Multiprocessing executor: identical results, different wall clock."""
    serial = run_campaign(_throughput_campaign(), executor=SerialExecutor())
    report = run_once(
        benchmark,
        run_campaign,
        _throughput_campaign(),
        executor=ParallelExecutor(processes=2),
    )
    assert report.total == 48
    assert report.failed == 0
    assert [r.to_json() for r in report.results] == [
        r.to_json() for r in serial.results
    ]


def _pulling_campaign() -> CampaignSpec:
    return CampaignSpec(
        name="bench-pulling",
        algorithms=(AlgorithmSpec.create("sampled-boosted", {"sample_size": 2}),),
        adversaries=("crash", "phase-king-skew"),
        num_faults=(1,),
        runs_per_setting=6,
        seed=5,
        max_rounds=40,
        stop_after_agreement=None,
        model="pulling",
    )


def test_pulling_campaign_throughput(benchmark):
    """The Section 5 model through the same campaign machinery."""
    report = run_once(
        benchmark, run_campaign, _pulling_campaign(), executor=SerialExecutor()
    )
    assert report.total == 12
    assert report.failed == 0
    assert all(r.model == "pulling" for r in report.results)
    assert all((r.max_pulls or 0) > 0 for r in report.results)
