"""Benchmark E1 — regenerate Table 1 (algorithm comparison).

Regenerates the published-vs-measured comparison of synchronous 2-counting
algorithms and checks the qualitative shape of the paper's Table 1: the
deterministic constructions of this work stabilise within their Theorem 1
bounds while using few state bits, and the randomised baseline needs only
``⌈log2 c⌉`` bits but exponential expected time.
"""

from __future__ import annotations

from _bench_utils import run_once

from repro.experiments.table1 import run_table1


def test_table1_regeneration(benchmark):
    result = run_once(benchmark, run_table1, trials=4, randomized_trials=8, max_rounds=3000, seed=0)
    kinds = {row["kind"] for row in result.rows}
    assert kinds == {"published", "measured"}

    measured = {row["algorithm"]: row for row in result.rows if row["kind"] == "measured"}
    corollary1 = next(row for name, row in measured.items() if "Corollary 1" in name)
    boosted = next(row for name, row in measured.items() if "A(12,3)" in name)
    randomized = next(row for name, row in measured.items() if "Randomised" in name)

    # Shape checks mirroring the paper's table:
    # deterministic constructions stabilise within their bounds...
    assert "within bound: True" in corollary1["notes"]
    assert "within bound: True" in boosted["notes"]
    # ... the boosted counter uses more state bits than the 1-bit randomised
    # baseline but far fewer than a consensus-cascade (O(f log f)) would need
    # at the same resilience.
    assert randomized["state_bits"] == 1
    assert corollary1["state_bits"] <= 16
    assert boosted["state_bits"] <= 32
